//! Task-side speculation API.
//!
//! An application implements [`Operator`]; the executor calls
//! [`Operator::execute`] once per launched task with a fresh
//! [`TaskCtx`]. The context is the *only* way to touch shared state:
//!
//! * [`TaskCtx::lock`] acquires the abstract lock of an arbitrary slot.
//! * [`TaskCtx::read`] / [`TaskCtx::write`] acquire the slot's lock
//!   implicitly, verify ownership, transition the task into its access
//!   phase (freezing it against lock theft), and — for writes — record
//!   a copy-on-write undo snapshot.
//! * [`TaskCtx::alloc`] allocates a fresh slot and immediately locks
//!   it.
//!
//! If any operation returns [`Abort`], the operator must propagate it
//! (the `?` operator does). The executor then rolls the task back:
//! undo snapshots are replayed in reverse — sound because the task
//! still holds the abstract lock of every slot it wrote — and all
//! locks are released.

use crate::lock::{self, state, AcquireError, ConflictPolicy, LockSpace};
use crate::probe::{obs_emit, Probe};
use crate::store::SpecStore;
use std::sync::atomic::{AtomicU8, Ordering};

/// Why a task must abort. Propagate it out of
/// [`Operator::execute`]; the executor handles rollback and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// Lost an abstract-lock collision.
    Conflict {
        /// The contested lock index.
        lock: usize,
    },
    /// Doomed by a higher-priority task (priority-wins policy).
    Doomed,
    /// The operator itself requested an abort-and-retry.
    Requested,
    /// An injected fault fired on this task (spurious-abort kind,
    /// feature `faults`). The executor books it as a fault, not a
    /// conflict, and re-queues the task with its retry count bumped.
    Fault,
}

impl From<AcquireError> for Abort {
    fn from(e: AcquireError) -> Self {
        match e {
            AcquireError::Conflict { lock, .. } => Abort::Conflict { lock },
            AcquireError::Doomed => Abort::Doomed,
        }
    }
}

/// A speculative operator: the application logic run for each task.
///
/// Implementations must route **all** shared-state access through the
/// provided [`TaskCtx`] and must be safe to re-execute (tasks are
/// retried after aborts).
pub trait Operator: Sync {
    /// The unit of work (a node of the paper's CC graph). `Sync` is
    /// required because workers execute tasks through shared slices.
    type Task: Send + Sync;

    /// Execute `task` speculatively. On success, return the tasks
    /// spawned by this commit (amorphous data-parallelism); they are
    /// added to the work-set. Propagate [`Abort`] on conflict.
    fn execute(&self, task: &Self::Task, cx: &mut TaskCtx<'_>) -> Result<Vec<Self::Task>, Abort>;

    /// The global lock index of `task`'s seed element, if the operator
    /// wants the checker's static↔dynamic radius cross-check: every
    /// lock the task acquires is then audited to lie within the
    /// statically inferred conflict radius (`FOOTPRINT.toml`) of this
    /// seed. Default `None` opts out — the check is only meaningful
    /// for operators whose footprint is a ball around one element.
    fn conflict_seed(&self, task: &Self::Task) -> Option<u64> {
        let _ = task;
        None
    }
}

/// An undo-log entry: restores one slot's pre-write value.
struct UndoEntry {
    /// Replayed exactly once, in reverse log order, by `rollback`.
    restore: Box<dyn FnOnce()>,
    /// Lock index of the slot (for write-dedup).
    lock: usize,
}

/// Per-task speculation context (one per launched task per round).
pub struct TaskCtx<'rt> {
    slot: usize,
    space: &'rt LockSpace,
    states: &'rt [AtomicU8],
    policy: ConflictPolicy,
    /// The lane tag stamped onto every lock word this task acquires:
    /// lane 0's current epoch for round/continuous tasks, the owning
    /// worker's lane tag for pipelined tasks. Cached at construction —
    /// a task's lane epoch cannot advance while the task runs.
    tag: u64,
    lockset: Vec<usize>,
    undo: Vec<UndoEntry>,
    accessed: bool,
    /// Locks acquired (for stats).
    pub acquires: usize,
    /// Audit trail of every lock transition and data access, deposited
    /// in the space's sink when the task finishes.
    #[cfg(feature = "checker")]
    trace: optpar_checker::TaskTrace,
    /// An injected fault waiting to fire (armed by the executor from
    /// its [`FaultPlan`](crate::faults::FaultPlan), ticked down on
    /// every context operation).
    #[cfg(feature = "faults")]
    inject: Option<crate::faults::ArmedFault<'rt>>,
    /// Home shard of this task: the shard of the first lock it
    /// acquired through a store. Fresh acquisitions in any *other*
    /// shard are booked as cross-shard crossings on the
    /// [`LockSpace`] — the scale harness's locality metric.
    #[cfg(feature = "obs")]
    home_shard: Option<usize>,
    /// This worker's event-ring probe (feature `obs`): lock
    /// acquisitions and contentions are recorded through it.
    #[cfg(feature = "obs")]
    probe: Probe<'rt>,
    /// The epoch stamped onto this task's lock events (read once at
    /// probe attach, so every event of the task carries the round's
    /// launch epoch).
    #[cfg(feature = "obs")]
    obs_epoch: u64,
}

impl std::fmt::Debug for TaskCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCtx")
            .field("slot", &self.slot)
            .field("policy", &self.policy)
            .field("locks_held", &self.lockset.len())
            .field("undo_entries", &self.undo.len())
            .field("accessed", &self.accessed)
            .finish_non_exhaustive()
    }
}

impl<'rt> TaskCtx<'rt> {
    pub(crate) fn new(
        slot: usize,
        space: &'rt LockSpace,
        states: &'rt [AtomicU8],
        policy: ConflictPolicy,
    ) -> Self {
        Self::with_tag(
            slot,
            space,
            states,
            policy,
            space.lane_tag(0),
            space.epoch(),
        )
    }

    /// A context for a pipelined task running in worker lane `lane`:
    /// lock words are stamped with the lane's current tag, and the
    /// audit trace carries that tag as its epoch so the checker groups
    /// traces per batch (the unit within which committed-exclusivity
    /// must hold).
    pub(crate) fn new_in_lane(
        slot: usize,
        space: &'rt LockSpace,
        states: &'rt [AtomicU8],
        policy: ConflictPolicy,
        lane: usize,
    ) -> Self {
        let tag = space.lane_tag(lane);
        Self::with_tag(slot, space, states, policy, tag, tag)
    }

    fn with_tag(
        slot: usize,
        space: &'rt LockSpace,
        states: &'rt [AtomicU8],
        policy: ConflictPolicy,
        tag: u64,
        trace_epoch: u64,
    ) -> Self {
        // Without the checker the trace-epoch argument is unused.
        let _ = trace_epoch;
        TaskCtx {
            slot,
            space,
            states,
            policy,
            tag,
            lockset: Vec::with_capacity(8),
            undo: Vec::new(),
            accessed: false,
            acquires: 0,
            #[cfg(feature = "checker")]
            trace: optpar_checker::TaskTrace::new(slot, trace_epoch),
            #[cfg(feature = "faults")]
            inject: None,
            #[cfg(feature = "obs")]
            home_shard: None,
            #[cfg(feature = "obs")]
            probe: None,
            #[cfg(feature = "obs")]
            obs_epoch: 0,
        }
    }

    /// Attach this worker's event-ring probe (a no-op without `obs`).
    /// Kept separate from [`TaskCtx::new`] so the many direct test
    /// constructions need no probe plumbing.
    #[cfg(feature = "obs")]
    pub(crate) fn attach_probe(&mut self, probe: Probe<'rt>) {
        self.probe = probe;
        if probe.is_some() {
            self.obs_epoch = self.space.epoch();
        }
    }

    /// Attach this worker's event-ring probe (a no-op without `obs`).
    #[cfg(not(feature = "obs"))]
    pub(crate) fn attach_probe(&mut self, _probe: Probe<'rt>) {}

    /// Arm this context with the fault (if any) the plan draws for its
    /// `(epoch, slot)` coordinate.
    #[cfg(feature = "faults")]
    pub(crate) fn arm_fault(&mut self, plan: &'rt crate::faults::FaultPlan, epoch: u64) {
        if let Some((kind, countdown)) = plan.draw(epoch, self.slot) {
            self.inject = Some(crate::faults::ArmedFault {
                plan,
                epoch,
                kind,
                countdown,
            });
        }
    }

    /// Tick the armed fault (one context operation elapsed); fires it
    /// when the countdown reaches zero. A fired panic unwinds out of
    /// here and is contained by the executor; a fired spurious abort
    /// returns `Err(Abort::Fault)`; a delay spins and continues.
    #[cfg(feature = "faults")]
    fn tick_fault(&mut self) -> Result<(), Abort> {
        match self.inject.as_mut() {
            None => Ok(()),
            Some(armed) if armed.countdown > 0 => {
                armed.countdown -= 1;
                Ok(())
            }
            Some(_) => match self.inject.take() {
                Some(armed) => armed.fire(self.slot),
                None => Ok(()),
            },
        }
    }

    /// This task's round slot (= commit priority; lower commits first
    /// under the priority-wins policy).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Record the task's seed element (from [`Operator::conflict_seed`])
    /// on the audit trace, anchoring the static↔dynamic radius
    /// cross-check for this task.
    #[cfg(feature = "checker")]
    pub(crate) fn note_seed(&mut self, seed: Option<u64>) {
        self.trace.seed = seed;
    }

    /// Acquire the abstract lock of `store` slot `i` without touching
    /// the data (useful for cautious operators that lock their whole
    /// neighbourhood up front).
    pub fn lock<T>(&mut self, store: &SpecStore<T>, i: usize) -> Result<(), Abort> {
        let l = store.lock_of(i);
        #[cfg(feature = "obs")]
        let before = self.acquires;
        self.lock_raw(l)?;
        #[cfg(feature = "obs")]
        self.note_shard(store.shard_of(i), before);
        Ok(())
    }

    /// Book a fresh store acquisition against this task's home shard
    /// (the shard of its first acquisition — a placement-independent
    /// definition that works identically in round and pipelined
    /// modes). Re-acquisitions (`acquires` unchanged) don't count.
    #[cfg(feature = "obs")]
    fn note_shard(&mut self, shard: usize, acquires_before: usize) {
        if self.acquires > acquires_before {
            let home = *self.home_shard.get_or_insert(shard);
            self.space.note_shard_acquire(shard != home);
        }
    }

    /// Acquire a raw lock index.
    pub fn lock_raw(&mut self, l: usize) -> Result<(), Abort> {
        // Every lock/read/write/alloc funnels through here, so this is
        // where an armed injected fault ticks toward firing.
        #[cfg(feature = "faults")]
        self.tick_fault()?;
        match lock::acquire_tagged(self.space, self.states, self.policy, self.slot, self.tag, l) {
            Ok(true) => {
                self.lockset.push(l);
                self.acquires += 1;
                #[cfg(feature = "checker")]
                self.trace
                    .events
                    .push(optpar_checker::TraceEvent::Acquired { lock: l });
                obs_emit!(
                    self.probe,
                    optpar_obs::EventKind::LockAcquire {
                        lock: l as u64,
                        slot: self.slot as u32,
                        epoch: self.obs_epoch,
                    }
                );
                Ok(())
            }
            Ok(false) => Ok(()),
            Err(e) => {
                #[cfg(feature = "checker")]
                if let AcquireError::Conflict { lock, holder } = e {
                    self.trace
                        .events
                        .push(optpar_checker::TraceEvent::Conflicted { lock, holder });
                }
                #[cfg(feature = "obs")]
                if let (Some(ring), AcquireError::Conflict { lock, holder }) = (self.probe, e) {
                    ring.record(optpar_obs::EventKind::LockContend {
                        lock: lock as u64,
                        slot: self.slot as u32,
                        holder: holder as u32,
                    });
                }
                Err(e.into())
            }
        }
    }

    /// Transition into the access phase (idempotent). After this, the
    /// task's locks can no longer be stolen.
    fn enter_access(&mut self) -> Result<(), Abort> {
        if self.accessed {
            return Ok(());
        }
        match self.states[self.slot].compare_exchange(
            state::ACQUIRING,
            state::ACCESSING,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                self.accessed = true;
                Ok(())
            }
            Err(_) => Err(Abort::Doomed),
        }
    }

    /// Verify we still own lock `l` (it may have been stolen while we
    /// were still in the acquire phase).
    fn verify_owned(&self, l: usize) -> Result<(), Abort> {
        if self.space.owner_of(l) == Some(self.slot) {
            Ok(())
        } else {
            Err(Abort::Doomed)
        }
    }

    /// Record a data access that is about to happen. Coverage is
    /// re-derived from the lock word itself (not from `verify_owned`'s
    /// verdict, which aborts the access), so a protocol bug that lets
    /// an access through uncovered shows up in the trace.
    #[cfg(feature = "checker")]
    fn trace_access(&mut self, l: usize, kind: optpar_checker::AccessKind) {
        let covered = self.space.owner_of(l) == Some(self.slot) && self.lockset.contains(&l);
        self.trace.events.push(optpar_checker::TraceEvent::Access {
            lock: l,
            kind,
            covered,
        });
    }

    /// Read `store[i]`, acquiring its lock if necessary.
    ///
    /// The returned reference borrows the context, so it cannot outlive
    /// the next context operation — references never dangle across
    /// lock transitions.
    pub fn read<'c, T: Send>(&'c mut self, store: &SpecStore<T>, i: usize) -> Result<&'c T, Abort> {
        let l = store.lock_of(i);
        #[cfg(feature = "obs")]
        let before = self.acquires;
        self.lock_raw(l)?;
        #[cfg(feature = "obs")]
        self.note_shard(store.shard_of(i), before);
        self.enter_access()?;
        self.verify_owned(l)?;
        #[cfg(feature = "checker")]
        self.trace_access(l, optpar_checker::AccessKind::Read);
        // SAFETY: we hold the abstract lock of slot `i` (verified above)
        // and, having entered the access phase, it cannot be stolen;
        // the lock grants exclusive access, and the returned shared
        // borrow is tied to `&mut self`, so no mutation can occur
        // through this context while it lives.
        unsafe { Ok(&*store.slot_ptr(i)) }
    }

    /// Copy `store[i]` out (avoids holding a borrow of the context).
    pub fn read_copy<T: Send + Copy>(
        &mut self,
        store: &SpecStore<T>,
        i: usize,
    ) -> Result<T, Abort> {
        self.read(store, i).copied()
    }

    /// Write access to `store[i]`: acquires the lock, snapshots the old
    /// value into the undo log (first write per slot only), and returns
    /// an exclusive reference.
    pub fn write<'c, T: Send + Clone + 'static>(
        &'c mut self,
        store: &SpecStore<T>,
        i: usize,
    ) -> Result<&'c mut T, Abort> {
        let l = store.lock_of(i);
        #[cfg(feature = "obs")]
        let before = self.acquires;
        self.lock_raw(l)?;
        #[cfg(feature = "obs")]
        self.note_shard(store.shard_of(i), before);
        self.enter_access()?;
        self.verify_owned(l)?;
        #[cfg(feature = "checker")]
        self.trace_access(l, optpar_checker::AccessKind::Write);
        let ptr = store.slot_ptr(i);
        if !self.undo.iter().any(|u| u.lock == l) {
            // SAFETY: exclusive access as in `read`; we clone the
            // current value out while no other reference exists.
            let old = unsafe { (*ptr).clone() };
            let raw = SendPtr(ptr);
            self.undo.push(UndoEntry {
                lock: l,
                // SAFETY: deferred to call time — the restore closure
                // runs during rollback, while this task still holds the
                // lock of slot `i` (writes only happen under held,
                // unstealable locks), so the store slot is exclusively
                // ours; the store outlives the round.
                restore: Box::new(move || unsafe {
                    *raw.0 = old;
                }),
            });
        }
        // SAFETY: exclusive access as in `read`; `&mut self` ensures no
        // other outstanding reference from this context.
        unsafe { Ok(&mut *ptr) }
    }

    /// Allocate a fresh slot in `store` and lock it (a fresh slot is
    /// uncontended, so this cannot conflict, but the lock keeps the
    /// invariant "all access under locks" uniform).
    pub fn alloc<T: Send>(&mut self, store: &SpecStore<T>) -> Result<usize, Abort> {
        let i = store.alloc();
        self.lock(store, i)?;
        Ok(i)
    }

    /// Operator-requested abort (e.g. optimistic validation failed at
    /// the application level).
    pub fn abort_requested<T>(&self) -> Result<T, Abort> {
        Err(Abort::Requested)
    }

    /// Number of undo entries recorded (distinct slots written).
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Attempt to commit: transition to `COMMITTED` unless doomed.
    ///
    /// On success the undo log is discarded and the still-held lockset
    /// is returned: **committed tasks keep their locks until the round
    /// barrier** so that later tasks of the same round conflict with
    /// them, exactly as in the paper's model (a node aborts iff a
    /// neighbour *committed* in the same round). The round-based
    /// executor expires these locks wholesale with its end-of-round
    /// epoch bump ([`LockSpace::advance_epoch`]); the continuous
    /// executor releases them explicitly. Returns `None` (after
    /// rolling back) if the task was doomed.
    pub(crate) fn finish_commit(mut self) -> Option<Vec<usize>> {
        let committed = self.states[self.slot]
            .compare_exchange(
                if self.accessed {
                    state::ACCESSING
                } else {
                    state::ACQUIRING
                },
                state::COMMITTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if committed {
            self.undo.clear();
            #[cfg(feature = "checker")]
            {
                self.trace.outcome = optpar_checker::Outcome::Committed;
                self.space.audit().push_trace(std::mem::replace(
                    &mut self.trace,
                    optpar_checker::TaskTrace::new(self.slot, 0),
                ));
            }
            Some(std::mem::take(&mut self.lockset))
        } else {
            // Doomed between our last access and commit: this can only
            // happen while still in ACQUIRING (nothing written), but
            // roll back uniformly for robustness.
            self.finish_abort();
            None
        }
    }

    /// Roll back: replay undo entries in reverse, release locks, mark
    /// `ABORTED`.
    pub(crate) fn finish_abort(mut self) {
        for entry in self.undo.drain(..).rev() {
            (entry.restore)();
        }
        lock::release_all_tagged(self.space, self.slot, self.tag, &self.lockset);
        self.states[self.slot].store(state::ABORTED, Ordering::Release);
        #[cfg(feature = "checker")]
        {
            self.trace.outcome = optpar_checker::Outcome::Aborted;
            self.space.audit().push_trace(std::mem::replace(
                &mut self.trace,
                optpar_checker::TaskTrace::new(self.slot, 0),
            ));
        }
    }

    /// Mark this task's abort as operator-requested in the audit
    /// trail, so the commit-set oracle does not expect it to commit.
    #[cfg(feature = "checker")]
    pub(crate) fn note_requested_abort(&mut self) {
        self.trace
            .events
            .push(optpar_checker::TraceEvent::AbortRequested);
    }

    /// Mark this task as faulted (contained panic or injected fault)
    /// in the audit trail, so the commit-set oracle excuses its abort.
    #[cfg(feature = "checker")]
    pub(crate) fn note_fault(&mut self) {
        self.trace.events.push(optpar_checker::TraceEvent::Faulted);
    }

    /// Deliberately buggy lock release for checker fault-injection
    /// tests: frees the lock word *before* commit while keeping the
    /// local lockset bookkeeping — exactly the "lost release" class of
    /// bug the committed-exclusivity analysis exists to catch.
    #[cfg(all(test, feature = "checker"))]
    pub(crate) fn buggy_release_lock(&self, l: usize) {
        lock::release_all(self.space, self.slot, &[l]);
    }
}

/// Raw pointer wrapper so undo closures can be stored in the (single
/// threaded) context without borrow-checker entanglement.
struct SendPtr<T>(*mut T);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::LockSpace;

    /// Commit and immediately release (round-barrier stand-in for unit
    /// tests; the executor does this at the end of each round).
    fn commit_release(cx: TaskCtx<'_>, space: &LockSpace) -> bool {
        let slot = cx.slot();
        match cx.finish_commit() {
            Some(lockset) => {
                crate::lock::release_all(space, slot, &lockset);
                true
            }
            None => false,
        }
    }

    fn setup(cap: usize, tasks: usize) -> (LockSpace, Vec<AtomicU8>, crate::lock::Region) {
        let mut b = LockSpace::builder();
        let r = b.region(cap);
        let space = b.build();
        let states = (0..tasks)
            .map(|_| AtomicU8::new(state::ACQUIRING))
            .collect();
        (space, states, r)
    }

    #[test]
    fn write_and_commit() {
        let (space, states, r) = setup(4, 1);
        let store = SpecStore::filled(r, 4, 0u32);
        let mut cx = TaskCtx::new(0, &space, &states, ConflictPolicy::FirstWins);
        *cx.write(&store, 2).unwrap() = 99;
        assert_eq!(cx.undo_len(), 1);
        assert!(commit_release(cx, &space));
        assert!(space.check_all_free().is_ok());
        let mut store = store;
        assert_eq!(*store.get_mut(2), 99);
    }

    #[test]
    fn write_and_rollback_restores() {
        let (space, states, r) = setup(4, 1);
        let store = SpecStore::from_vec(r, vec![10, 20, 30, 40], 0);
        let mut cx = TaskCtx::new(0, &space, &states, ConflictPolicy::FirstWins);
        *cx.write(&store, 1).unwrap() = 999;
        *cx.write(&store, 3).unwrap() = 888;
        *cx.write(&store, 1).unwrap() = 777; // second write, same slot
        assert_eq!(cx.undo_len(), 2, "per-slot snapshots are deduped");
        cx.finish_abort();
        assert!(space.check_all_free().is_ok());
        let mut store = store;
        assert_eq!(store.snapshot(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn conflict_aborts_second_task() {
        let (space, states, r) = setup(2, 2);
        let store = SpecStore::filled(r, 2, 0u8);
        let mut cx0 = TaskCtx::new(0, &space, &states, ConflictPolicy::FirstWins);
        let mut cx1 = TaskCtx::new(1, &space, &states, ConflictPolicy::FirstWins);
        cx0.lock(&store, 0).unwrap();
        let err = cx1.write(&store, 0).unwrap_err();
        assert_eq!(err, Abort::Conflict { lock: 0 });
        cx1.finish_abort();
        assert!(commit_release(cx0, &space));
        assert!(space.check_all_free().is_ok());
    }

    #[test]
    fn priority_steal_dooms_victim_writes() {
        let (space, states, r) = setup(2, 2);
        let store = SpecStore::filled(r, 2, 0u8);
        // Victim (slot 1) locks but does not access.
        let mut cx1 = TaskCtx::new(1, &space, &states, ConflictPolicy::PriorityWins);
        cx1.lock(&store, 0).unwrap();
        // Thief (slot 0) steals.
        let mut cx0 = TaskCtx::new(0, &space, &states, ConflictPolicy::PriorityWins);
        *cx0.write(&store, 0).unwrap() = 7;
        // Victim now tries to write through the stolen lock: doomed.
        assert_eq!(cx1.write(&store, 0).unwrap_err(), Abort::Doomed);
        cx1.finish_abort();
        assert!(commit_release(cx0, &space));
        let mut store = store;
        assert_eq!(*store.get_mut(0), 7);
    }

    #[test]
    fn accessing_task_survives_steal_attempt() {
        let (space, states, r) = setup(2, 2);
        let store = SpecStore::filled(r, 2, 0u8);
        let mut cx1 = TaskCtx::new(1, &space, &states, ConflictPolicy::PriorityWins);
        *cx1.write(&store, 0).unwrap() = 5; // enters access phase
        let mut cx0 = TaskCtx::new(0, &space, &states, ConflictPolicy::PriorityWins);
        assert!(matches!(
            cx0.write(&store, 0).unwrap_err(),
            Abort::Conflict { .. }
        ));
        cx0.finish_abort();
        assert!(commit_release(cx1, &space));
        let mut store = store;
        assert_eq!(*store.get_mut(0), 5);
    }

    #[test]
    fn commit_fails_if_doomed_before_access() {
        let (space, states, r) = setup(1, 2);
        let store = SpecStore::filled(r, 1, 0u8);
        let mut cx1 = TaskCtx::new(1, &space, &states, ConflictPolicy::PriorityWins);
        cx1.lock(&store, 0).unwrap();
        // Thief dooms and steals.
        let mut cx0 = TaskCtx::new(0, &space, &states, ConflictPolicy::PriorityWins);
        cx0.lock(&store, 0).unwrap();
        // Victim finished "successfully" but must fail to commit.
        assert!(!commit_release(cx1, &space));
        assert!(commit_release(cx0, &space));
        assert!(space.check_all_free().is_ok());
    }

    #[test]
    fn read_then_write_same_slot() {
        let (space, states, r) = setup(1, 1);
        let store = SpecStore::filled(r, 1, 41u32);
        let mut cx = TaskCtx::new(0, &space, &states, ConflictPolicy::FirstWins);
        let v = *cx.read(&store, 0).unwrap();
        *cx.write(&store, 0).unwrap() = v + 1;
        assert!(commit_release(cx, &space));
        let mut store = store;
        assert_eq!(*store.get_mut(0), 42);
    }

    #[test]
    fn alloc_locks_fresh_slot() {
        let (space, states, r) = setup(4, 1);
        let store = SpecStore::filled(r, 1, 0u32);
        let mut cx = TaskCtx::new(0, &space, &states, ConflictPolicy::FirstWins);
        let i = cx.alloc(&store).unwrap();
        assert_eq!(i, 1);
        assert_eq!(space.owner_of(r.lock_of(1)), Some(0));
        *cx.write(&store, i).unwrap() = 5;
        assert!(commit_release(cx, &space));
        assert!(space.check_all_free().is_ok());
    }

    #[test]
    fn requested_abort() {
        let (space, states, r) = setup(1, 1);
        let store = SpecStore::filled(r, 1, 1u8);
        let mut cx = TaskCtx::new(0, &space, &states, ConflictPolicy::FirstWins);
        *cx.write(&store, 0).unwrap() = 2;
        let e: Result<(), Abort> = cx.abort_requested();
        assert_eq!(e.unwrap_err(), Abort::Requested);
        cx.finish_abort();
        let mut store = store;
        assert_eq!(*store.get_mut(0), 1, "requested abort must roll back");
    }

    /// Fault injection: a lost pre-commit lock release lets a second
    /// task acquire, write, and commit on the same datum in the same
    /// epoch. The runtime itself cannot see this (both tasks followed
    /// the API); the committed-exclusivity analysis must.
    #[cfg(feature = "checker")]
    #[test]
    fn seeded_lost_release_race_is_detected() {
        use optpar_checker::{CheckerMode, Report};
        let (space, states, r) = setup(1, 2);
        space.audit().set_mode(CheckerMode::Collect);
        space.audit().arm(false);
        let store = SpecStore::filled(r, 1, 0u8);
        let epoch = space.epoch();
        let mut cx0 = TaskCtx::new(0, &space, &states, ConflictPolicy::FirstWins);
        *cx0.write(&store, 0).unwrap() = 1;
        // The seeded bug: the held lock leaks out before commit.
        cx0.buggy_release_lock(r.lock_of(0));
        assert!(cx0.finish_commit().is_some());
        // Task 1 sneaks in on the leaked lock and also commits.
        let mut cx1 = TaskCtx::new(1, &space, &states, ConflictPolicy::FirstWins);
        *cx1.write(&store, 0).unwrap() = 2;
        assert!(cx1.finish_commit().is_some());
        space.audit().drain_round();
        let reports = space.audit().take_reports();
        assert!(
            reports.iter().any(|rep| matches!(
                rep,
                Report::Race { lock: 0, epoch: e, pair }
                    if *e == epoch && pair.0.slot == 0 && pair.1.slot == 1
            )),
            "expected a race on lock 0 naming tasks 0 and 1: {reports:?}"
        );
    }

    /// Home shard = shard of the first acquisition; later fresh
    /// acquisitions in other shards are crossings, re-acquisitions
    /// count nothing.
    #[cfg(feature = "obs")]
    #[test]
    fn cross_shard_acquires_are_counted() {
        use crate::shard::ShardMap;
        use std::sync::Arc;
        let map = Arc::new(ShardMap::from_parts(&[0u32, 0, 1, 1], 2));
        let mut b = LockSpace::builder();
        let r = b.region_aligned(map.padded_len());
        let space = b.build();
        let states: Vec<AtomicU8> = vec![AtomicU8::new(state::ACQUIRING)];
        let store = SpecStore::new_sharded(r, vec![0u32; 4], 0, map);
        let mut cx = TaskCtx::new(0, &space, &states, ConflictPolicy::FirstWins);
        cx.lock(&store, 1).unwrap(); // home shard = 0
        cx.lock(&store, 0).unwrap(); // same shard
        *cx.write(&store, 2).unwrap() = 1; // cross into shard 1
        cx.lock(&store, 2).unwrap(); // re-acquire: no count
        assert_eq!(space.shard_counts(), (3, 1));
        cx.finish_abort();
        assert!(space.check_all_free().is_ok());
    }

    #[test]
    fn reentrant_locks_release_once() {
        let (space, states, r) = setup(1, 1);
        let store = SpecStore::filled(r, 1, 0u8);
        let mut cx = TaskCtx::new(0, &space, &states, ConflictPolicy::FirstWins);
        cx.lock(&store, 0).unwrap();
        cx.lock(&store, 0).unwrap();
        assert_eq!(cx.acquires, 1);
        assert!(commit_release(cx, &space));
        assert!(space.check_all_free().is_ok());
    }
}

//! Opt-in per-phase wall-clock accounting for the executors.
//!
//! The throughput bench attaches a [`PhaseClock`] to an [`Executor`]
//! (via [`Executor::set_phase_clock`]) to split a run's wall-clock
//! into `draw / execute / commit / wait`, where *wait* is barrier
//! rendezvous time in round mode and budget-starved or empty-draw
//! idling in pipelined mode. Detached (the default), the executors
//! take no timestamps at all — the stamp helpers short-circuit on
//! `None` before touching the clock.
//!
//! This is deliberately the **only** runtime module that calls
//! `Instant::now`: the `instant-in-round-path` lint bans the syscall
//! from the round-critical files themselves, and they instead call
//! the stamp API here, which is inert unless a bench explicitly
//! attached a clock. Stamps are taken per round / per batch, never
//! per task, so the attached cost stays far below the effects being
//! measured.
//!
//! The job service's timing needs go through the same chokepoint:
//! [`Deadline`] and [`Stopwatch`] wrap the clock so `service.rs`
//! stays `Instant`-free under the lint — deadline checks happen at
//! round boundaries, never inside one.
//!
//! [`Executor`]: crate::exec::Executor
//! [`Executor::set_phase_clock`]: crate::exec::Executor::set_phase_clock

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which execution phase a measured span is charged to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Sampling tasks out of the work-set (incl. the work-set lock).
    Draw,
    /// Worker-side task execution (speculation, rollback, re-queue).
    Execute,
    /// Commit machinery: merge, audit drain, epoch/lane bumps, window
    /// flushes.
    Commit,
    /// Dead time: barrier rendezvous (round mode) or budget-starved /
    /// empty-draw yielding (pipelined mode).
    Wait,
}

/// Thread-safe nanosecond accumulators, one per [`Phase`].
#[derive(Debug, Default)]
pub struct PhaseClock {
    draw: AtomicU64,
    execute: AtomicU64,
    commit: AtomicU64,
    wait: AtomicU64,
}

/// An opaque start-of-span stamp (see [`PhaseClock::start`]).
#[derive(Clone, Copy, Debug)]
pub struct Stamp(Instant);

impl PhaseClock {
    /// A fresh clock with all accumulators at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a start stamp for a span.
    pub fn start() -> Stamp {
        Stamp(Instant::now())
    }

    /// Charge the span since `s` to `phase`.
    pub fn add(&self, phase: Phase, s: Stamp) {
        self.add_ns(phase, span_ns(s));
    }

    /// Charge `ns` nanoseconds to `phase` directly (used for derived
    /// spans like `workers * wall - busy`).
    pub fn add_ns(&self, phase: Phase, ns: u64) {
        self.counter(phase).fetch_add(ns, Ordering::AcqRel);
    }

    fn counter(&self, phase: Phase) -> &AtomicU64 {
        match phase {
            Phase::Draw => &self.draw,
            Phase::Execute => &self.execute,
            Phase::Commit => &self.commit,
            Phase::Wait => &self.wait,
        }
    }

    /// Current totals.
    pub fn snapshot(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            draw_ns: self.draw.load(Ordering::Acquire),
            execute_ns: self.execute.load(Ordering::Acquire),
            commit_ns: self.commit.load(Ordering::Acquire),
            wait_ns: self.wait.load(Ordering::Acquire),
        }
    }
}

/// Nanoseconds elapsed since stamp `s`.
pub fn span_ns(s: Stamp) -> u64 {
    u64::try_from(s.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A wall-clock deadline, checked at round boundaries (never inside a
/// round: the round path is `Instant`-free by lint, and a round holds
/// locks that a deadline must not interrupt mid-flight).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: std::time::Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(d).unwrap_or_else(Instant::now),
        }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> std::time::Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// A monotone elapsed-time counter for job latency and watchdog
/// accounting — the service-side sibling of [`Stamp`], kept here so
/// `service.rs` never touches `Instant` directly.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start counting now.
    pub fn started() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since the start.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds since the start (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Stamp helper for an optional clock: `None` clock, no syscall.
#[inline]
pub(crate) fn maybe_start(pc: Option<&PhaseClock>) -> Option<Stamp> {
    pc.map(|_| PhaseClock::start())
}

/// Charge helper for an optional clock/stamp pair.
#[inline]
pub(crate) fn maybe_add(pc: Option<&PhaseClock>, phase: Phase, s: Option<Stamp>) {
    if let (Some(pc), Some(s)) = (pc, s) {
        pc.add(phase, s);
    }
}

/// Accumulated per-phase totals, in nanoseconds of thread time (the
/// execute/wait phases sum across workers, so totals can exceed the
/// run's wall-clock).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Work-set sampling time.
    pub draw_ns: u64,
    /// Worker busy time executing tasks.
    pub execute_ns: u64,
    /// Commit/merge/flush machinery time.
    pub commit_ns: u64,
    /// Barrier or window dead time.
    pub wait_ns: u64,
}

impl PhaseBreakdown {
    /// Sum of all phases.
    pub fn total_ns(&self) -> u64 {
        self.draw_ns + self.execute_ns + self.commit_ns + self.wait_ns
    }

    /// Fraction of the total charged to `phase` (0.0 on an empty
    /// clock).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        let part = match phase {
            Phase::Draw => self.draw_ns,
            Phase::Execute => self.execute_ns,
            Phase::Commit => self.commit_ns,
            Phase::Wait => self.wait_ns,
        };
        part as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_into_the_right_phase() {
        let pc = PhaseClock::new();
        let s = PhaseClock::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        pc.add(Phase::Draw, s);
        pc.add_ns(Phase::Wait, 500);
        let snap = pc.snapshot();
        assert!(snap.draw_ns >= 2_000_000, "slept 2ms, got {}", snap.draw_ns);
        assert_eq!(snap.wait_ns, 500);
        assert_eq!(snap.execute_ns, 0);
        assert_eq!(snap.commit_ns, 0);
        assert_eq!(snap.total_ns(), snap.draw_ns + 500);
        assert!(snap.share(Phase::Draw) > 0.99);
    }

    #[test]
    fn empty_clock_has_zero_shares_not_nan() {
        let snap = PhaseClock::new().snapshot();
        assert_eq!(snap.total_ns(), 0);
        assert_eq!(snap.share(Phase::Wait), 0.0);
    }

    #[test]
    fn deadline_expires_and_remaining_saturates() {
        let d = Deadline::after(std::time::Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), std::time::Duration::ZERO);
        let far = Deadline::after(std::time::Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > std::time::Duration::from_secs(3000));
        // An overflowing deadline degrades to "already expired", not
        // a panic.
        let huge = Deadline::after(std::time::Duration::from_secs(u64::MAX));
        let _ = huge.expired();
    }

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::started();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.elapsed() >= std::time::Duration::from_millis(2));
        assert!(sw.elapsed_ns() >= 2_000_000);
    }

    #[test]
    fn detached_helpers_are_inert() {
        let s = maybe_start(None);
        assert!(s.is_none());
        maybe_add(None, Phase::Execute, s); // must not panic
        let pc = PhaseClock::new();
        let s = maybe_start(Some(&pc));
        maybe_add(Some(&pc), Phase::Execute, s);
        assert!(pc.snapshot().execute_ns > 0 || pc.snapshot().execute_ns == 0);
    }
}

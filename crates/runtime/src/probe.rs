//! The observability probe shim: the one place where the runtime's
//! hot path meets the `obs` feature gate.
//!
//! A [`Probe`] is a worker's handle to its own event ring. With
//! `obs` enabled it is `Option<&EventRing>` (None when no recorder
//! is attached); with `obs` disabled it is a zero-sized placeholder,
//! so every function that threads a probe through keeps one
//! signature across both builds and no call site needs a `cfg`.
//!
//! [`obs_emit!`] is the record macro: its body is stripped by `cfg`
//! before name resolution, so event-construction expressions naming
//! `optpar_obs` types are free to appear at call sites of builds
//! that do not link `optpar-obs` at all — they compile to nothing.

/// Per-worker event-ring handle (`obs` builds).
#[cfg(feature = "obs")]
pub(crate) type Probe<'a> = Option<&'a optpar_obs::EventRing>;

/// Zero-sized probe placeholder (non-`obs` builds).
#[cfg(not(feature = "obs"))]
pub(crate) type Probe<'a> = std::marker::PhantomData<&'a ()>;

/// The zero-sized detached probe. Only the non-`obs` build needs a
/// constructor — `obs` call sites build `Option` values directly.
#[cfg(not(feature = "obs"))]
pub(crate) fn no_probe<'a>() -> Probe<'a> {
    std::marker::PhantomData
}

/// Record an event through a probe; compiles to nothing without the
/// `obs` feature (the `$kind` expression is never evaluated).
macro_rules! obs_emit {
    ($probe:expr, $kind:expr) => {
        #[cfg(feature = "obs")]
        if let Some(ring) = $probe {
            ring.record($kind);
        }
    };
}
pub(crate) use obs_emit;

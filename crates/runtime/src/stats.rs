//! Execution statistics: the measurements the controller consumes and
//! the experiment harness reports.

/// Statistics of one execution round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Allocation requested by the controller for this round.
    pub m: usize,
    /// Tasks actually launched (`min(m, workset)`).
    pub launched: usize,
    /// Tasks that committed.
    pub committed: usize,
    /// Tasks that aborted (and were re-queued).
    pub aborted: usize,
    /// Tasks that faulted — contained operator panics, injected
    /// faults, lost result slots — and were re-queued. Disjoint from
    /// `aborted`: `launched = committed + aborted + faulted`.
    pub faulted: usize,
    /// New tasks spawned by committed work.
    pub spawned: usize,
    /// Abstract-lock acquisitions across all tasks.
    pub lock_acquires: usize,
    /// Tasks retired to the dead-letter list this round: they faulted
    /// at `retries ≥` the executor's dead-letter budget and left the
    /// system instead of re-queuing. A subset of `faulted`, so the
    /// round identity `launched = committed + aborted + faulted` is
    /// unchanged.
    pub dead_lettered: usize,
}

impl RoundStats {
    /// Realized conflict ratio `r = aborted / launched` (0 when
    /// nothing was launched). Faults are excluded: they measure
    /// operator health, not lock contention.
    pub fn conflict_ratio(&self) -> f64 {
        if self.launched == 0 {
            0.0
        } else {
            self.aborted as f64 / self.launched as f64
        }
    }

    /// Retry pressure `(aborted + faulted) / launched`: the fraction
    /// of launched work that must be re-run, whatever the reason.
    /// This is what the processor-allocation controller observes —
    /// a fault storm should shrink `m` exactly like a conflict storm
    /// (equal to [`RoundStats::conflict_ratio`] when nothing faults,
    /// so the fault-free control loop is unchanged).
    pub fn pressure_ratio(&self) -> f64 {
        if self.launched == 0 {
            0.0
        } else {
            (self.aborted + self.faulted) as f64 / self.launched as f64
        }
    }

    /// Realized fault ratio `faulted / launched`.
    pub fn fault_ratio(&self) -> f64 {
        if self.launched == 0 {
            0.0
        } else {
            self.faulted as f64 / self.launched as f64
        }
    }
}

/// Statistics of a whole run (a sequence of rounds).
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// One record per executed round, in order.
    pub rounds: Vec<RoundStats>,
}

impl RunStats {
    /// Total tasks launched over the run.
    pub fn total_launched(&self) -> usize {
        self.rounds.iter().map(|r| r.launched).sum()
    }

    /// Total commits over the run (= work completed).
    pub fn total_committed(&self) -> usize {
        self.rounds.iter().map(|r| r.committed).sum()
    }

    /// Total aborts over the run (= work wasted).
    pub fn total_aborted(&self) -> usize {
        self.rounds.iter().map(|r| r.aborted).sum()
    }

    /// Total faults over the run (contained panics, injected faults,
    /// lost result slots).
    pub fn total_faulted(&self) -> usize {
        self.rounds.iter().map(|r| r.faulted).sum()
    }

    /// Total tasks dead-lettered over the run (faulted past the
    /// dead-letter budget and retired instead of re-queued).
    pub fn total_dead_lettered(&self) -> usize {
        self.rounds.iter().map(|r| r.dead_lettered).sum()
    }

    /// Number of rounds executed.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Overall wasted-work fraction.
    pub fn overall_conflict_ratio(&self) -> f64 {
        let l = self.total_launched();
        if l == 0 {
            0.0
        } else {
            self.total_aborted() as f64 / l as f64
        }
    }

    /// Work efficiency (committed / launched).
    pub fn efficiency(&self) -> f64 {
        1.0 - self.overall_conflict_ratio()
    }

    /// Throughput proxy: commits per round.
    pub fn commits_per_round(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.total_committed() as f64 / self.round_count() as f64
        }
    }

    /// The `m_t` series (for Fig. 3-style plots from runtime runs).
    pub fn m_series(&self) -> Vec<usize> {
        self.rounds.iter().map(|r| r.m).collect()
    }

    /// The per-round conflict-ratio series.
    pub fn r_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.conflict_ratio()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(m: usize, launched: usize, committed: usize, spawned: usize) -> RoundStats {
        RoundStats {
            m,
            launched,
            committed,
            aborted: launched - committed,
            faulted: 0,
            spawned,
            lock_acquires: 0,
            dead_lettered: 0,
        }
    }

    #[test]
    fn ratios() {
        let r = round(10, 10, 7, 2);
        assert!((r.conflict_ratio() - 0.3).abs() < 1e-12);
        assert_eq!(RoundStats::default().conflict_ratio(), 0.0);
    }

    #[test]
    fn pressure_includes_faults() {
        let mut r = round(10, 10, 7, 0);
        assert_eq!(
            r.pressure_ratio(),
            r.conflict_ratio(),
            "fault-free pressure equals the conflict ratio"
        );
        // Re-book one abort and one commit as faults.
        r.aborted -= 1;
        r.committed -= 1;
        r.faulted += 2;
        assert!((r.conflict_ratio() - 0.2).abs() < 1e-12);
        assert!((r.fault_ratio() - 0.2).abs() < 1e-12);
        assert!((r.pressure_ratio() - 0.4).abs() < 1e-12);
        assert_eq!(RoundStats::default().pressure_ratio(), 0.0);
        assert_eq!(RoundStats::default().fault_ratio(), 0.0);
    }

    #[test]
    fn run_aggregates() {
        let run = RunStats {
            rounds: vec![round(10, 10, 5, 0), round(20, 20, 19, 3)],
        };
        assert_eq!(run.total_launched(), 30);
        assert_eq!(run.total_committed(), 24);
        assert_eq!(run.total_aborted(), 6);
        assert_eq!(run.round_count(), 2);
        assert!((run.overall_conflict_ratio() - 0.2).abs() < 1e-12);
        assert!((run.efficiency() - 0.8).abs() < 1e-12);
        assert_eq!(run.commits_per_round(), 12.0);
        assert_eq!(run.m_series(), vec![10, 20]);
        assert_eq!(run.r_series().len(), 2);
    }

    #[test]
    fn empty_run() {
        let run = RunStats::default();
        assert_eq!(run.overall_conflict_ratio(), 0.0);
        assert_eq!(run.commits_per_round(), 0.0);
    }

    /// Pin the `launched == 0` behavior of every ratio accessor: an
    /// empty round yields exactly `0.0` — never NaN — even when other
    /// fields are nonzero (an `m` request with a drained work-set).
    #[test]
    fn empty_round_ratios_are_zero_not_nan() {
        let r = RoundStats {
            m: 64,
            launched: 0,
            committed: 0,
            aborted: 0,
            faulted: 0,
            spawned: 0,
            lock_acquires: 0,
            dead_lettered: 0,
        };
        for ratio in [r.conflict_ratio(), r.pressure_ratio(), r.fault_ratio()] {
            assert!(!ratio.is_nan(), "0/0 must not leak NaN into the controller");
            assert_eq!(ratio.to_bits(), 0.0f64.to_bits(), "exactly +0.0");
        }
        let run = RunStats { rounds: vec![r] };
        assert_eq!(run.overall_conflict_ratio().to_bits(), 0.0f64.to_bits());
    }

    /// An empty-round observation must leave every closed-loop
    /// controller's allocation untouched (the `launched == 0`
    /// early-return), so a drained work-set cannot fold NaN or a
    /// phantom sample into the window average.
    #[test]
    fn controllers_ignore_empty_round_observations() {
        use optpar_core::control::{
            Controller, HybridController, RecurrenceA, RecurrenceB, RecurrenceParams,
        };
        fn check<C: Controller>(mut ctl: C) {
            let before = ctl.current_m();
            for _ in 0..32 {
                ctl.observe(f64::NAN, 0);
                ctl.observe(1.0, 0);
            }
            assert_eq!(
                ctl.current_m(),
                before,
                "{} moved m on a zero-launch observation",
                ctl.name()
            );
        }
        check(HybridController::with_rho(0.25));
        check(RecurrenceA::new(RecurrenceParams::default()));
        check(RecurrenceB::new(RecurrenceParams::default()));
    }
}

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

//! # optpar-runtime — a speculative task runtime built from scratch
//!
//! The paper's controller is designed to sit inside an optimistic
//! (Galois-style) parallelization runtime. No such runtime exists in
//! the Rust ecosystem, so this crate builds one:
//!
//! * [`lock`] — **abstract locks**: one epoch-stamped atomic owner
//!   word per shared datum. A task must hold the lock on every datum
//!   it touches; conflicting acquisition triggers speculation-abort
//!   according to a [`lock::ConflictPolicy`] (first-wins, or
//!   priority-wins with a write-phase guard that makes lock stealing
//!   sound). The round barrier is a single epoch bump.
//! * [`pool`] — [`pool::WorkerPool`], persistent worker threads
//!   created once per executor and parked between rounds.
//! * [`store`] — [`store::SpecStore`], a speculation-aware shared
//!   array: reads and writes go through a [`task::TaskCtx`], which
//!   enforces lock ownership and records copy-on-write undo snapshots.
//! * [`task`] — per-task speculation state machine
//!   (`Acquiring → Writing → Committed / Doomed → Aborted`) and the
//!   task-side API ([`task::TaskCtx`]).
//! * [`exec`] — the round-based parallel [`exec::Executor`]: each round
//!   draws `m` tasks uniformly at random from the [`exec::WorkSet`]
//!   (the paper's model §2), runs them speculatively on a worker pool,
//!   rolls back losers, re-queues them, and reports the realized
//!   conflict ratio to a processor-allocation
//!   [`Controller`](optpar_core::control::Controller).
//! * [`faults`] — fault tolerance: operator panics are contained per
//!   task (`catch_unwind` → structured [`faults::TaskFault`], rollback,
//!   re-queue — the worker thread survives), with a deterministic
//!   seeded fault-injection plan behind the `faults` feature. Aborted
//!   or faulted tasks age toward the front of the drawn prefix after
//!   [`exec::ExecutorConfig::retry_budget`] retries, so no task
//!   starves; a round watchdog shrinks `m` toward 1 under sustained
//!   zero-commit stalls.
//! * [`pipelined`] — the barrier-free **epoch-pipelined** executor:
//!   workers draw, execute, and commit continuously against a sliding
//!   in-flight speculation window, with per-worker lock *lanes* in the
//!   [`lock::LockSpace`] so batch release stays O(1) without a global
//!   epoch bump and one slow task no longer stalls the world.
//!
//! ## Execution model
//!
//! One **round** = one temporal step of the paper's model. Locks are
//! held until the end of the task (commit or rollback), never across
//! rounds. A task that fails to acquire a lock aborts, restores its
//! writes from the undo log (it still holds every lock it wrote
//! under, so restoration is exclusive), releases its locks, and is
//! returned to the work-set for a later round. Commit hands back the
//! operator's newly spawned tasks, which enter the work-set
//! (amorphous data-parallelism: work begets work).
//!
//! ## Safety
//!
//! Shared state lives in [`store::SpecStore`], which wraps
//! `UnsafeCell` slots. All access is mediated by [`task::TaskCtx`],
//! which checks abstract-lock ownership at run time before handing out
//! references; exclusivity of a held lock is what makes the `unsafe`
//! blocks sound. The invariants are documented on each `unsafe` impl
//! and exercised by stress tests plus differential tests against the
//! sequential model in `optpar-core`.

pub mod arena;
pub mod continuous;
pub mod exec;
pub mod faults;
pub mod lock;
pub mod phase;
pub mod pipelined;
pub mod pool;
mod probe;
pub mod service;
pub mod shard;
pub mod stats;
pub mod store;
pub mod task;

/// The speculation-safety analysis layer (`optpar-checker`),
/// re-exported so downstream tests can drive the audit sink.
#[cfg(feature = "checker")]
pub use optpar_checker as checker;

/// The observability layer (`optpar-obs`), re-exported so downstream
/// tests and tools can drain logs, fold metrics, export traces, and
/// run the trace validator.
#[cfg(feature = "obs")]
pub use optpar_obs as obs;

pub use arena::AppendArena;
pub use exec::{Executor, ExecutorConfig, WorkSet};
#[cfg(feature = "faults")]
pub use faults::{silence_injected_panics, FaultKind, FaultPlan, FaultRecord};
pub use faults::{DeadLetter, FaultCause, FaultLog, TaskFault, DEFAULT_FAULT_LOG_CAP};
pub use lock::{ConflictPolicy, LockSpace, Region};
pub use phase::{Deadline, Phase, PhaseBreakdown, PhaseClock, Stopwatch};
pub use pipelined::{Placement, PipelinedConfig};
pub use pool::WorkerPool;
#[cfg(feature = "faults")]
pub use service::ChaosConfig;
pub use service::{
    serve, JobCx, JobError, JobFn, JobOutput, JobReport, JobService, JobSpec, JobTicket, Rejection,
    ServiceConfig, ServiceStats,
};
pub use shard::{ShardMap, SHARD_ALIGN};
pub use stats::{RoundStats, RunStats};
pub use store::SpecStore;
pub use task::{Abort, Operator, TaskCtx};

//! Continuous (barrier-free) execution mode.
//!
//! The paper's model — and [`crate::exec::Executor::run_round`] — is
//! round-synchronous: launch `m`, barrier, observe. A production
//! runtime would instead keep *approximately `m` tasks in flight at
//! all times* and let the controller observe a sliding window of
//! completions. This module implements that mode:
//!
//! * a shared in-flight budget (`target`) that the controller adjusts
//!   on every window of `window` completed tasks;
//! * workers that pull uniformly random tasks from the shared work-set
//!   whenever the budget allows, run them speculatively, and release
//!   locks immediately on commit *or* abort — conflicts now arise only
//!   from genuine temporal overlap, not from round co-residency;
//! * aborted tasks are re-queued, spawned tasks enter the work-set.
//!
//! Because conflicts require overlap, the measured conflict ratio at a
//! given allocation is *lower* than the round model's `r̄(m)` — the
//! controller consequently settles at a higher steady allocation. The
//! `ablation_continuous` experiment quantifies this gap; the
//! controller itself needs no modification, which is the point: the
//! paper's heuristic is robust to the execution model.
//!
//! Only [`ConflictPolicy::FirstWins`] is supported: in-flight slots
//! are recycled, so slot indices carry no priority meaning.

use crate::exec::{Executor, WorkSet};
use crate::faults::{recover, TaskFault};
use crate::lock::{state, ConflictPolicy};
use crate::probe::obs_emit;
use crate::stats::{RoundStats, RunStats};
use crate::task::{Abort, Operator, TaskCtx};
use optpar_core::control::Controller;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Aggregated outcome counters shared between workers.
#[derive(Default)]
struct Counters {
    committed: AtomicUsize,
    aborted: AtomicUsize,
    /// Contained operator panics and injected faults (disjoint from
    /// `aborted`, mirroring [`RoundStats::faulted`]).
    faulted: AtomicUsize,
}

impl<O: Operator> Executor<'_, O> {
    /// Run in continuous mode until the work-set drains (or
    /// `max_completions` tasks have finished).
    ///
    /// `ctl` adjusts the in-flight budget every `window` completions,
    /// observing `r = aborts/completions` over that window. Returns
    /// one [`RoundStats`] entry per window.
    ///
    /// # Panics
    /// Panics if configured with [`ConflictPolicy::PriorityWins`] or a
    /// zero window.
    pub fn run_continuous<C: Controller + Send, R: Rng + ?Sized>(
        &self,
        ws: &mut WorkSet<O::Task>,
        ctl: &mut C,
        window: usize,
        max_completions: usize,
        rng: &mut R,
    ) -> RunStats {
        assert!(window >= 1, "window must be positive");
        assert_eq!(
            self.config().policy,
            ConflictPolicy::FirstWins,
            "continuous mode supports only first-wins arbitration"
        );
        let workers = self.config().workers;
        // Slot pool: enough for every worker to hold one task.
        let slot_count = workers;
        let states: Vec<AtomicU8> = (0..slot_count)
            .map(|_| AtomicU8::new(state::ACQUIRING))
            .collect();

        // Tasks alive anywhere: pending in the work-set or drawn by a
        // worker and not yet committed. Termination tests this single
        // counter — testing `inflight` after an empty draw is racy
        // (the last in-flight worker may re-queue an abort after our
        // draw but before its decrement, losing the task).
        let live = AtomicUsize::new(ws.len());
        let shared_ws: Mutex<WorkSet<O::Task>> = Mutex::new(std::mem::replace(ws, WorkSet::new()));
        let target = AtomicUsize::new(ctl.current_m());
        let done = AtomicBool::new(false);
        let inflight = AtomicUsize::new(0);
        let counters = Counters::default();
        let completions = AtomicUsize::new(0);
        let base_seed: u64 = rng.random();
        // Window flushing is done by whichever worker crosses the
        // boundary (a starved coordinator thread would under-sample on
        // oversubscribed machines), so the controller sits behind a
        // mutex together with the window bookkeeping.
        struct WindowState<'c, C: Controller> {
            ctl: &'c mut C,
            last_committed: usize,
            last_aborted: usize,
            last_faulted: usize,
            rounds: Vec<RoundStats>,
        }
        let winstate = Mutex::new(WindowState {
            ctl,
            last_committed: 0,
            last_aborted: 0,
            last_faulted: 0,
            rounds: Vec::new(),
        });
        let flush = |ws_: &mut WindowState<'_, C>| {
            let c = counters.committed.load(Ordering::Acquire);
            let a = counters.aborted.load(Ordering::Acquire);
            let f = counters.faulted.load(Ordering::Acquire);
            let dc = c - ws_.last_committed;
            let da = a - ws_.last_aborted;
            let df = f - ws_.last_faulted;
            let launched = dc + da + df;
            if launched == 0 {
                return;
            }
            ws_.last_committed = c;
            ws_.last_aborted = a;
            ws_.last_faulted = f;
            let m = target.load(Ordering::Acquire);
            // The controller observes retry pressure — aborts plus
            // faults — so a fault storm shrinks the in-flight budget
            // exactly like a conflict storm.
            ws_.ctl
                .observe((da + df) as f64 / launched as f64, launched);
            target.store(ws_.ctl.current_m(), Ordering::Release);
            // Drain the worker rings and plot the controller's new
            // trajectory point (no round barrier exists to do it).
            #[cfg(feature = "obs")]
            if let Some(rec) = self.recorder() {
                rec.drain_workers();
                rec.controller(
                    ws_.ctl.current_m() as u64,
                    (da + df) as f64 / launched as f64,
                    ws_.ctl.target_rho(),
                );
            }
            ws_.rounds.push(RoundStats {
                m,
                launched,
                committed: dc,
                aborted: da,
                faulted: df,
                spawned: 0,
                lock_acquires: 0,
                dead_lettered: 0,
            });
        };

        let worker = |w: usize| {
            let mut wrng = StdRng::seed_from_u64(base_seed ^ (w as u64) << 32);
            let probe = self.probe_for(w);
            loop {
                if done.load(Ordering::Acquire) {
                    break;
                }
                // Respect the in-flight budget.
                let cur = inflight.load(Ordering::Acquire);
                if cur >= target.load(Ordering::Acquire)
                    || inflight
                        .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                {
                    std::thread::yield_now();
                    continue;
                }
                // Draw a uniformly random pending task.
                let task = {
                    let mut q = recover(shared_ws.lock());
                    let batch = q.sample_drain(1, &mut wrng);
                    batch.into_iter().next()
                };
                let Some(task) = task else {
                    inflight.fetch_sub(1, Ordering::AcqRel);
                    // Nothing pending: quiescent iff no task is alive
                    // anywhere (pending, running, or about to be
                    // re-queued by a worker that drew it).
                    if live.load(Ordering::Acquire) == 0 {
                        done.store(true, Ordering::Release);
                        break;
                    }
                    std::thread::yield_now();
                    continue;
                };
                // Use the worker index as the (recycled) slot.
                states[w].store(state::ACQUIRING, Ordering::Release);
                let mut cx = TaskCtx::new(w, self.space(), &states, ConflictPolicy::FirstWins);
                #[cfg(feature = "checker")]
                cx.note_seed(self.op().conflict_seed(&task));
                cx.attach_probe(probe);
                obs_emit!(
                    probe,
                    optpar_obs::EventKind::TaskLaunch {
                        slot: w as u32,
                        epoch: self.space().epoch(),
                    }
                );
                #[cfg(feature = "faults")]
                if let Some(plan) = self.fault_plan() {
                    cx.arm_fault(plan, self.space().epoch());
                }
                // Contain operator panics exactly like the round
                // executor: roll back, release, re-queue, keep the
                // worker.
                let outcome = catch_unwind(AssertUnwindSafe(|| self.op().execute(&task, &mut cx)));
                #[cfg(feature = "obs")]
                let acquires = cx.acquires;
                let aborted = match outcome {
                    Ok(Ok(spawned)) => match cx.finish_commit() {
                        Some(lockset) => {
                            // Commit releases immediately in
                            // continuous mode (no barrier).
                            crate::lock::release_all(self.space(), w, &lockset);
                            counters.committed.fetch_add(1, Ordering::AcqRel);
                            obs_emit!(
                                probe,
                                optpar_obs::EventKind::TaskCommit {
                                    slot: w as u32,
                                    acquires: acquires as u32,
                                    spawned: spawned.len() as u32,
                                }
                            );
                            let spawned_n = spawned.len();
                            if spawned_n > 0 {
                                let mut q = recover(shared_ws.lock());
                                q.extend(spawned);
                                live.fetch_add(spawned_n, Ordering::AcqRel);
                            }
                            // The committed task leaves the system
                            // only after its spawns were counted, so
                            // `live` never transiently reads zero
                            // while work exists.
                            live.fetch_sub(1, Ordering::AcqRel);
                            false
                        }
                        None => {
                            // First-wins tasks cannot be doomed, so
                            // this is unreachable — but book it as an
                            // abort rather than crashing the worker.
                            counters.aborted.fetch_add(1, Ordering::AcqRel);
                            obs_emit!(
                                probe,
                                optpar_obs::EventKind::TaskAbort {
                                    slot: w as u32,
                                    acquires: acquires as u32,
                                }
                            );
                            recover(shared_ws.lock()).push(task);
                            true
                        }
                    },
                    Ok(Err(abort)) => {
                        #[cfg(feature = "checker")]
                        if matches!(abort, Abort::Fault) {
                            cx.note_fault();
                        }
                        cx.finish_abort();
                        if matches!(abort, Abort::Fault) {
                            counters.faulted.fetch_add(1, Ordering::AcqRel);
                            obs_emit!(
                                probe,
                                optpar_obs::EventKind::TaskFault {
                                    slot: w as u32,
                                    cause: crate::faults::FaultCause::Injected.code(),
                                }
                            );
                            self.log_fault(TaskFault {
                                epoch: self.space().epoch(),
                                slot: Some(w),
                                cause: crate::faults::FaultCause::Injected,
                                detail: "injected spurious abort".to_string(),
                            });
                        } else {
                            counters.aborted.fetch_add(1, Ordering::AcqRel);
                            obs_emit!(
                                probe,
                                optpar_obs::EventKind::TaskAbort {
                                    slot: w as u32,
                                    acquires: acquires as u32,
                                }
                            );
                        }
                        recover(shared_ws.lock()).push(task);
                        true
                    }
                    Err(payload) => {
                        #[cfg(feature = "checker")]
                        cx.note_fault();
                        cx.finish_abort();
                        counters.faulted.fetch_add(1, Ordering::AcqRel);
                        let (cause, detail) = crate::faults::classify_panic(payload.as_ref());
                        obs_emit!(
                            probe,
                            optpar_obs::EventKind::TaskFault {
                                slot: w as u32,
                                cause: cause.code(),
                            }
                        );
                        self.log_fault(TaskFault {
                            epoch: self.space().epoch(),
                            slot: Some(w),
                            cause,
                            detail,
                        });
                        recover(shared_ws.lock()).push(task);
                        true
                    }
                };
                let fin = completions.fetch_add(1, Ordering::AcqRel) + 1;
                inflight.fetch_sub(1, Ordering::AcqRel);
                // The worker crossing a window boundary flushes
                // the window to the controller.
                if fin.is_multiple_of(window) {
                    let mut st = recover(winstate.lock());
                    flush(&mut st);
                }
                if fin >= max_completions {
                    done.store(true, Ordering::Release);
                    break;
                }
                if aborted {
                    // Abort backoff: without it, a retry storm
                    // forms while the conflicting holder is
                    // descheduled (contention meltdown) —
                    // yielding lets the holder finish.
                    std::thread::yield_now();
                }
            }
        };
        // Dispatch on the executor's persistent pool (threads created
        // once per executor, parked between calls); workers == 1 runs
        // inline on the calling thread. A retired pool (shut down
        // under us) degrades to the same inline path: the claim loop
        // drains the shared work-set to completion either way.
        match self.pool() {
            Some(pool) => {
                if pool.run(&worker).is_err() {
                    worker(0);
                }
            }
            None => worker(0),
        }
        // Flush the final partial window.
        let mut st = recover(winstate.into_inner());
        flush(&mut st);
        // `flush` only drains on a non-empty window; sweep up whatever
        // the last partial window left in the rings.
        #[cfg(feature = "obs")]
        if let Some(rec) = self.recorder() {
            rec.drain_workers();
        }
        let run = RunStats { rounds: st.rounds };
        debug_assert!(self.space().check_all_free().is_ok());
        *ws = recover(shared_ws.into_inner());
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutorConfig;
    use crate::lock::LockSpace;
    use crate::store::SpecStore;
    use crate::task::Abort;
    use optpar_core::control::{FixedController, HybridController};

    /// Ring operator: task i touches slots i and i+1.
    struct RingOp<'s> {
        store: &'s SpecStore<i64>,
        n: usize,
    }

    impl Operator for RingOp<'_> {
        type Task = usize;
        fn execute(&self, &i: &usize, cx: &mut TaskCtx<'_>) -> Result<Vec<usize>, Abort> {
            let j = (i + 1) % self.n;
            *cx.write(self.store, i)? += 1;
            *cx.write(self.store, j)? -= 1;
            Ok(vec![])
        }
    }

    #[test]
    fn continuous_drains_and_serializes() {
        let n = 256;
        let mut b = LockSpace::builder();
        let r = b.region(n);
        let space = b.build();
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 4,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut ctl = FixedController::new(8);
        let mut rng = StdRng::seed_from_u64(1);
        let run = ex.run_continuous(&mut ws, &mut ctl, 32, 1_000_000, &mut rng);
        assert!(ws.is_empty());
        assert_eq!(run.total_committed(), n);
        let mut store = store;
        assert_eq!(store.snapshot().iter().sum::<i64>(), 0);
    }

    #[test]
    fn continuous_with_adaptive_controller() {
        let n = 512;
        let mut b = LockSpace::builder();
        let r = b.region(n);
        let space = b.build();
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 3,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut ctl = HybridController::with_rho(0.25);
        let mut rng = StdRng::seed_from_u64(2);
        let run = ex.run_continuous(&mut ws, &mut ctl, 64, 1_000_000, &mut rng);
        assert!(ws.is_empty());
        assert_eq!(run.total_committed(), n);
        assert!(run.round_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "first-wins")]
    fn continuous_rejects_priority_policy() {
        let mut b = LockSpace::builder();
        let r = b.region(1);
        let space = b.build();
        let store = SpecStore::filled(r, 1, 0i64);
        let op = RingOp {
            store: &store,
            n: 1,
        };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 2,
                policy: ConflictPolicy::PriorityWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec(vec![0usize]);
        let mut ctl = FixedController::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = ex.run_continuous(&mut ws, &mut ctl, 4, 10, &mut rng);
    }

    #[test]
    fn continuous_single_worker() {
        // Degenerate but legal: one worker, budget 1, no overlap at
        // all — zero conflicts.
        let n = 64;
        let mut b = LockSpace::builder();
        let r = b.region(n);
        let space = b.build();
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 1,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut ctl = FixedController::new(1);
        let mut rng = StdRng::seed_from_u64(4);
        let run = ex.run_continuous(&mut ws, &mut ctl, 16, 1_000_000, &mut rng);
        assert_eq!(run.total_committed(), n);
        assert_eq!(run.total_aborted(), 0, "no overlap, no conflicts");
    }

    /// Ring operator that panics exactly once, on first sight of
    /// task 7.
    struct PanicOnceRing<'s> {
        store: &'s SpecStore<i64>,
        n: usize,
        armed: std::sync::atomic::AtomicBool,
    }

    impl Operator for PanicOnceRing<'_> {
        type Task = usize;
        fn execute(&self, &i: &usize, cx: &mut TaskCtx<'_>) -> Result<Vec<usize>, Abort> {
            if i == 7 && self.armed.swap(false, Ordering::AcqRel) {
                panic!("continuous op blew up on task 7");
            }
            let j = (i + 1) % self.n;
            *cx.write(self.store, i)? += 1;
            *cx.write(self.store, j)? -= 1;
            Ok(vec![])
        }
    }

    #[test]
    fn continuous_contains_operator_panics() {
        let n = 64;
        let mut b = LockSpace::builder();
        let r = b.region(n);
        let space = b.build();
        let store = SpecStore::filled(r, n, 0i64);
        let op = PanicOnceRing {
            store: &store,
            n,
            armed: std::sync::atomic::AtomicBool::new(true),
        };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 4,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut ctl = FixedController::new(8);
        let mut rng = StdRng::seed_from_u64(17);
        let run = ex.run_continuous(&mut ws, &mut ctl, 16, 1_000_000, &mut rng);
        assert!(ws.is_empty());
        assert_eq!(
            run.total_committed(),
            n,
            "the panicked task was re-queued and committed"
        );
        assert_eq!(run.total_faulted(), 1);
        assert_eq!(ex.fault_count(), 1);
        let faults = ex.take_faults();
        assert!(faults[0].detail.contains("continuous op blew up"));
        assert_eq!(ex.worker_panics(), 0, "the panic never reached the pool");
        assert!(
            space.check_all_free().is_ok(),
            "faulted locks were released"
        );
        let mut store = store;
        assert_eq!(store.snapshot().iter().sum::<i64>(), 0);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::exec::ExecutorConfig;
    use crate::lock::LockSpace;
    use crate::store::SpecStore;
    use crate::task::{Abort, Operator, TaskCtx};
    use optpar_core::control::FixedController;

    /// High-contention operator: every task touches slot 0.
    struct HotSpot<'s> {
        store: &'s SpecStore<i64>,
    }
    impl Operator for HotSpot<'_> {
        type Task = usize;
        fn execute(&self, &i: &usize, cx: &mut TaskCtx<'_>) -> Result<Vec<usize>, Abort> {
            *cx.write(self.store, 0)? += i as i64;
            Ok(vec![])
        }
    }

    #[test]
    fn hotspot_contention_no_leaks() {
        let mut b = LockSpace::builder();
        let r = b.region(1);
        let space = b.build();
        let store = SpecStore::filled(r, 1, 0i64);
        let op = HotSpot { store: &store };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 4,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let n = 200;
        let mut ws = WorkSet::from_vec((1..=n).collect::<Vec<_>>());
        let mut ctl = FixedController::new(8);
        let mut rng = StdRng::seed_from_u64(9);
        let run = ex.run_continuous(&mut ws, &mut ctl, 32, 10_000_000, &mut rng);
        assert!(ws.is_empty());
        assert_eq!(run.total_committed(), n);
        assert!(space.check_all_free().is_ok(), "lock leak detected");
        let mut store = store;
        assert_eq!(
            *store.get_mut(0),
            (n * (n + 1) / 2) as i64,
            "serializable sum"
        );
    }
}

//! Append-only publication arena.
//!
//! Morphing workloads create immutable data at run time (e.g. mesh
//! points: written once, read forever). Routing such reads through
//! abstract locks would manufacture conflicts the algorithm doesn't
//! have — Galois likewise locks triangles, not points. [`AppendArena`]
//! provides the safe alternative: slots are written exactly once and
//! *published* with a release store; readers check the publication
//! flag with an acquire load, so every read is data-race-free without
//! taking any lock.
//!
//! Slots published by a task that later aborts simply leak (nothing
//! committed references them), mirroring [`crate::store::SpecStore`]'s
//! allocation policy.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A fixed-capacity, append-only, write-once shared array.
pub struct AppendArena<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    ready: Box<[AtomicBool]>,
    next: AtomicUsize,
}

// SAFETY: a slot is written exactly once (guarded by the `next`
// fetch_add handing out each index to one caller) before its `ready`
// flag is set with Release; readers only dereference after an Acquire
// load of `ready`, so reads never race the write.
unsafe impl<T: Send + Sync> Sync for AppendArena<T> {}
// SAFETY: moving the arena moves its values with it; `T: Send` is all
// that ownership transfer across threads requires (the interior
// UnsafeCell/MaybeUninit wrappers add no thread affinity).
unsafe impl<T: Send> Send for AppendArena<T> {}

impl<T> std::fmt::Debug for AppendArena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppendArena")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> AppendArena<T> {
    /// An arena able to hold `capacity` values.
    pub fn with_capacity(capacity: usize) -> Self {
        AppendArena {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            ready: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Seed the arena with initial values (before sharing).
    pub fn seeded(capacity: usize, init: Vec<T>) -> Self {
        assert!(init.len() <= capacity, "seed exceeds capacity");
        let arena = Self::with_capacity(capacity);
        for v in init {
            arena.push(v);
        }
        arena
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of published values (monotone).
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Acquire).min(self.capacity())
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publish a value; returns its index.
    ///
    /// # Panics
    /// Panics when capacity is exhausted.
    pub fn push(&self, value: T) -> usize {
        let i = self.next.fetch_add(1, Ordering::AcqRel);
        assert!(i < self.capacity(), "AppendArena capacity exhausted");
        // SAFETY: index `i` was handed to us alone by fetch_add and its
        // ready flag is still false, so no reader dereferences it yet
        // and no other writer exists.
        unsafe {
            (*self.slots[i].get()).write(value);
        }
        self.ready[i].store(true, Ordering::Release);
        i
    }

    /// Read a published value.
    ///
    /// # Panics
    /// Panics if `i` was never published (out of range or the writing
    /// task has not finished publishing).
    pub fn get(&self, i: usize) -> &T {
        assert!(
            i < self.capacity() && self.ready[i].load(Ordering::Acquire),
            "arena slot {i} not published"
        );
        // SAFETY: ready=true (Acquire) synchronizes with the Release
        // store in `push`, after which the slot is never written again.
        unsafe { (*self.slots[i].get()).assume_init_ref() }
    }

    /// Copy out all published values (may observe a prefix if pushes
    /// race; quiesce for exact snapshots).
    pub fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        let n = self.len();
        (0..n)
            .filter(|&i| self.ready[i].load(Ordering::Acquire))
            .map(|i| self.get(i).clone())
            .collect()
    }
}

impl<T> Drop for AppendArena<T> {
    fn drop(&mut self) {
        for (slot, ready) in self.slots.iter_mut().zip(self.ready.iter()) {
            if ready.load(Ordering::Acquire) {
                // SAFETY: published slots hold initialized values that
                // are never read again after drop.
                unsafe {
                    slot.get_mut().assume_init_drop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let a: AppendArena<String> = AppendArena::with_capacity(4);
        assert!(a.is_empty());
        assert_eq!(a.push("x".into()), 0);
        assert_eq!(a.push("y".into()), 1);
        assert_eq!(a.get(0), "x");
        assert_eq!(a.get(1), "y");
        assert_eq!(a.len(), 2);
        assert_eq!(a.snapshot(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn seeded_arena() {
        let a = AppendArena::seeded(5, vec![10, 20]);
        assert_eq!(a.len(), 2);
        assert_eq!(*a.get(1), 20);
        assert_eq!(a.push(30), 2);
    }

    #[test]
    #[should_panic(expected = "not published")]
    fn unpublished_get_panics() {
        let a: AppendArena<u8> = AppendArena::with_capacity(2);
        let _ = a.get(0);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn overflow_panics() {
        let a: AppendArena<u8> = AppendArena::with_capacity(1);
        a.push(1);
        a.push(2);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversize_seed_panics() {
        let _ = AppendArena::seeded(1, vec![1, 2]);
    }

    #[test]
    fn concurrent_push_unique_indices() {
        let a: AppendArena<usize> = AppendArena::with_capacity(400);
        std::thread::scope(|s| {
            for t in 0..4 {
                let a = &a;
                s.spawn(move || {
                    for k in 0..100 {
                        let i = a.push(t * 1000 + k);
                        assert_eq!(*a.get(i), t * 1000 + k);
                    }
                });
            }
        });
        assert_eq!(a.len(), 400);
        let mut snap = a.snapshot();
        snap.sort_unstable();
        snap.dedup();
        assert_eq!(snap.len(), 400, "all pushed values distinct and present");
    }

    #[test]
    fn drop_runs_for_published_only() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::AcqRel);
            }
        }
        {
            let a: AppendArena<D> = AppendArena::with_capacity(8);
            a.push(D);
            a.push(D);
        }
        assert_eq!(DROPS.load(Ordering::Acquire), 2);
    }
}

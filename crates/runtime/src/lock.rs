//! Abstract locks: the conflict-detection substrate.
//!
//! Every shared datum is assigned one word in a [`LockSpace`]. A word
//! packs `(tag, owner)` into one `AtomicU64`: the high 32 bits carry
//! the epoch *tag* under which the word was last written, the low 32
//! bits carry `slot + 1` for the owning task (`0` = free). The tag
//! itself is split into an 8-bit *lane* and a 24-bit lane-local
//! epoch: lane 0 is the global round lane (its epoch is the low 24
//! bits of the monotonic round counter), lanes `1..MAX_LANES` are
//! per-worker lanes used by the pipelined executor. A word whose tag
//! is not *live* — its lane's current epoch differs from the epoch
//! stamped in the tag — is *free by definition*: it is residue from
//! an earlier round or an already-retired batch. The round barrier is
//! therefore a single counter increment
//! ([`LockSpace::advance_epoch`]), and retiring a pipelined batch is
//! a single lane bump ([`LockSpace::advance_lane`]): committed tasks
//! keep their locks held until the barrier / batch retirement (the
//! model's semantics) without anyone walking their locksets to
//! release them — and a bump on one lane never stalls or frees work
//! on another.
//!
//! Acquisition is a CAS loop; a collision is a *speculative conflict*,
//! resolved by the round's [`ConflictPolicy`]:
//!
//! * [`ConflictPolicy::FirstWins`] — the requester aborts (Galois's
//!   default arbitration). Simple and always sound.
//! * [`ConflictPolicy::PriorityWins`] — the earlier task (lower slot)
//!   may *steal* the lock, but only from a victim that has not yet
//!   touched any data (state `Acquiring`): the thief first CASes the
//!   victim's state to `Doomed`, which the victim observes before its
//!   next data access. A victim that has entered its access phase
//!   (`Accessing`) can no longer be doomed, so its reads and writes
//!   are never invalidated mid-flight — this write-phase guard is what
//!   makes stealing sound. Matches the paper's commit rule (the
//!   earlier element of the permutation wins) for cautious operators,
//!   which acquire all locks before touching data.
//!
//! Locks are held until the owning task commits or rolls back — never
//! across epochs — so there is no waiting and hence no deadlock.
//! Aborting tasks still release eagerly (same epoch) so that their
//! words are reusable within the round; only the commit-time release
//! traversal is subsumed by the epoch bump.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Low 32 bits of a lock word: the owner mark (`slot + 1`, 0 = free).
const OWNER_MASK: u64 = 0xFFFF_FFFF;

/// Shift of the epoch tag within a lock word.
const EPOCH_SHIFT: u32 = 32;

/// Shift of the lane id within the 32-bit tag (high 8 tag bits).
const LANE_SHIFT: u32 = 24;

/// Low 24 bits of a tag: the lane-local epoch.
const LANE_EPOCH_MASK: u64 = 0x00FF_FFFF;

/// Number of epoch lanes. Lane 0 is the global round lane; lanes
/// `1..MAX_LANES` are claimable by pipelined workers (one per
/// worker), capping pipelined execution at 255 workers.
pub const MAX_LANES: usize = 256;

/// Owner words per 64-byte cache line. Sharded stores round their
/// shard bases to multiples of this (in lock words) and declare their
/// regions with [`LockSpaceBuilder::region_aligned`], so the owner
/// words of two shards never share a cache line.
pub const LINE_WORDS: usize = 8;

/// One cache line of owner words. The backing array is allocated as
/// lines, not words, so the first word of the space — and hence every
/// line-multiple boundary inside an aligned region — sits on a real
/// 64-byte boundary: intra-shard acquire/release traffic cannot
/// false-share with a neighbouring shard's words.
#[derive(Debug)]
#[repr(C, align(64))]
struct OwnerLine([AtomicU64; LINE_WORDS]);

/// How a lock collision between two speculative tasks is resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// The task that requests an already-held lock aborts itself.
    #[default]
    FirstWins,
    /// The earlier-priority task wins if the victim has not started
    /// accessing data; otherwise the requester aborts.
    PriorityWins,
}

/// Task speculation states (stored in per-round `AtomicU8`s).
pub mod state {
    /// Acquiring locks; no data touched yet. May be doomed by a thief.
    pub const ACQUIRING: u8 = 0;
    /// Accessing data (reads/writes). Locks can no longer be stolen.
    pub const ACCESSING: u8 = 1;
    /// Doomed by a higher-priority thief; must abort.
    pub const DOOMED: u8 = 2;
    /// Finished and committed.
    pub const COMMITTED: u8 = 3;
    /// Finished and aborted (self-detected or doomed).
    pub const ABORTED: u8 = 4;
}

/// A contiguous range of lock indices owned by one data structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    base: usize,
    len: usize,
}

impl Region {
    /// First lock index of the region.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of locks (= data slots) in the region.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the region empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lock index of slot `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn lock_of(&self, i: usize) -> usize {
        assert!(i < self.len, "slot {i} out of region of {} slots", self.len);
        self.base + i
    }
}

/// Builder for a [`LockSpace`]: declare one region per shared data
/// structure, then freeze.
#[derive(Debug, Default)]
pub struct LockSpaceBuilder {
    total: usize,
    regions: Vec<Region>,
}

impl LockSpaceBuilder {
    /// Reserve `len` lock words and return their region descriptor.
    pub fn region(&mut self, len: usize) -> Region {
        let r = Region {
            base: self.total,
            len,
        };
        self.total += len;
        self.regions.push(r);
        r
    }

    /// Reserve `len` lock words whose base index is rounded up to a
    /// cache-line boundary ([`LINE_WORDS`] words). Because the owner
    /// array itself is allocated in 64-byte lines, every line-multiple
    /// offset inside the returned region sits on a true cache-line
    /// boundary — which is what lets a sharded store guarantee that no
    /// two shards' lock words share a line. The (≤ 7) skipped words
    /// belong to no region and are never acquired.
    pub fn region_aligned(&mut self, len: usize) -> Region {
        self.total = self.total.next_multiple_of(LINE_WORDS);
        self.region(len)
    }

    /// Freeze into an immutable lock space.
    pub fn build(self) -> LockSpace {
        let lines = (0..self.total.div_ceil(LINE_WORDS))
            .map(|_| OwnerLine(Default::default()))
            .collect();
        let lanes = (0..MAX_LANES).map(|_| AtomicU64::new(0)).collect();
        LockSpace {
            lines,
            words: self.total,
            epoch: AtomicU64::new(0),
            lanes,
            regions: self.regions,
            #[cfg(feature = "checker")]
            audit: optpar_checker::AuditSink::new(),
            #[cfg(feature = "obs")]
            contended: AtomicU64::new(0),
            #[cfg(feature = "obs")]
            cas_retries: AtomicU64::new(0),
            #[cfg(feature = "obs")]
            shard_acquires: AtomicU64::new(0),
            #[cfg(feature = "obs")]
            shard_crossings: AtomicU64::new(0),
        }
    }
}

/// The global table of epoch-stamped abstract-lock owner words.
#[derive(Debug)]
pub struct LockSpace {
    /// Owner words, allocated as 64-byte cache lines (see
    /// [`OwnerLine`]); the flat word view is [`Self::owners`].
    lines: Box<[OwnerLine]>,
    /// Number of live lock words (the tail of the last line is
    /// padding: always zero, never part of any region).
    words: usize,
    /// Monotonic round counter; its low 24 bits are lane 0's epoch.
    epoch: AtomicU64,
    /// Per-lane epoch counters for lanes `1..MAX_LANES` (entry 0 is
    /// unused — lane 0 reads `epoch` instead). A pipelined worker owns
    /// exactly one lane and bumps it once per retired batch.
    lanes: Box<[AtomicU64]>,
    regions: Vec<Region>,
    /// Speculation-safety audit sink: tasks deposit traces here and
    /// the round barrier runs the lockset/oracle analyses over them.
    #[cfg(feature = "checker")]
    audit: optpar_checker::AuditSink,
    /// Total acquisitions lost to a conflict (feature `obs`; a
    /// statistic, so `Relaxed` suffices).
    #[cfg(feature = "obs")]
    contended: AtomicU64,
    /// Total CAS retries inside [`acquire`] — benign races where the
    /// owner word changed underfoot (feature `obs`).
    #[cfg(feature = "obs")]
    cas_retries: AtomicU64,
    /// Total acquisitions by tasks that declared a home shard on a
    /// sharded store (feature `obs`; statistic, `Relaxed` suffices).
    #[cfg(feature = "obs")]
    shard_acquires: AtomicU64,
    /// The subset of `shard_acquires` that landed in a different shard
    /// than the acquiring task's home — the cross-shard traffic the
    /// partitioner exists to minimize (feature `obs`).
    #[cfg(feature = "obs")]
    shard_crossings: AtomicU64,
}

impl LockSpace {
    /// Start declaring regions.
    pub fn builder() -> LockSpaceBuilder {
        LockSpaceBuilder::default()
    }

    /// Total number of lock words.
    pub fn len(&self) -> usize {
        self.words
    }

    /// Is the space empty?
    pub fn is_empty(&self) -> bool {
        self.words == 0
    }

    /// The declared regions, in declaration order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The raw owner words (used by [`crate::task::TaskCtx`]).
    #[inline]
    pub(crate) fn owners(&self) -> &[AtomicU64] {
        // SAFETY: `OwnerLine` is `repr(C, align(64))` around exactly
        // `LINE_WORDS` `AtomicU64`s — 64 bytes with no padding — so
        // the boxed lines form one contiguous array of
        // `lines.len() · LINE_WORDS ≥ words` words; the first `words`
        // of them are the live lock words.
        unsafe {
            std::slice::from_raw_parts(self.lines.as_ptr().cast::<AtomicU64>(), self.words)
        }
    }

    /// The current epoch counter (monotonic; one step per round).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Lane 0's current 32-bit tag (high 8 lane bits zero).
    #[inline]
    fn epoch_tag(&self) -> u64 {
        self.epoch() & LANE_EPOCH_MASK
    }

    /// The 32-bit tag a task running in `lane` must stamp right now.
    /// Lane 0 reads the global round counter; other lanes read their
    /// own batch counter.
    #[inline]
    pub fn lane_tag(&self, lane: usize) -> u64 {
        if lane == 0 {
            self.epoch_tag()
        } else {
            ((lane as u64) << LANE_SHIFT)
                | (self.lanes[lane].load(Ordering::Acquire) & LANE_EPOCH_MASK)
        }
    }

    /// Is `tag` the stamping lane's *current* tag? A lock word whose
    /// tag is not live is free by definition (lazy expiry), whatever
    /// its owner bits say.
    #[inline]
    fn tag_is_live(&self, tag: u64) -> bool {
        let lane = (tag >> LANE_SHIFT) as usize;
        if lane == 0 {
            tag == self.epoch_tag()
        } else {
            tag & LANE_EPOCH_MASK == self.lanes[lane].load(Ordering::Acquire) & LANE_EPOCH_MASK
        }
    }

    /// Is the word `w` held by a live owner right now?
    #[inline]
    fn word_is_held(&self, w: u64) -> bool {
        w & OWNER_MASK != 0 && self.tag_is_live(w >> EPOCH_SHIFT)
    }

    /// Advance the epoch: the O(1) round barrier. Every word still
    /// stamped with the previous epoch — i.e. every lock still held by
    /// a committed task of the finished round — becomes free without
    /// being touched.
    ///
    /// The 24-bit lane-0 epoch wraps once every 2^24 rounds; on wrap
    /// the space is swept to zero so a word abandoned 2^24 rounds ago
    /// cannot alias the reused tag. The sweep runs at a round barrier,
    /// where no lane is live, so it may clear lane residue too.
    /// Amortized cost is nil.
    pub fn advance_epoch(&self) {
        let old = self.epoch.fetch_add(1, Ordering::AcqRel);
        let new = old.wrapping_add(1);
        #[cfg(feature = "checker")]
        self.audit.assert_epoch_step(old, new);
        if new & LANE_EPOCH_MASK == 0 {
            for w in self.owners().iter() {
                w.store(0, Ordering::Release);
            }
            #[cfg(feature = "checker")]
            self.audit.assert_wrap_swept(
                new,
                self.owners()
                    .iter()
                    .enumerate()
                    .map(|(i, w)| (i, w.load(Ordering::Acquire)))
                    .find(|&(_, w)| w != 0),
            );
        }
    }

    /// Advance lane `lane`'s epoch: the O(1) batch retirement. Every
    /// word still stamped with the lane's previous epoch — i.e. every
    /// lock still held by a committed task of the retired batch —
    /// becomes free without being touched, and no other lane notices.
    ///
    /// The 24-bit lane epoch wraps once every 2^24 batches; on wrap,
    /// residue carrying this lane's id is swept to zero by CAS so a
    /// word abandoned 2^24 batches ago cannot alias the reused tag.
    /// The CAS sweep is safe concurrently with other lanes: it only
    /// clears words whose stamp belongs to this (single-owner) lane.
    ///
    /// # Panics
    /// Panics if `lane` is 0 (the global lane; use
    /// [`Self::advance_epoch`]) or out of range.
    pub fn advance_lane(&self, lane: usize) {
        assert!(
            (1..MAX_LANES).contains(&lane),
            "lane {lane} is not a worker lane"
        );
        let old = self.lanes[lane].fetch_add(1, Ordering::AcqRel);
        if old.wrapping_add(1) & LANE_EPOCH_MASK == 0 {
            let lane = lane as u64;
            for w in self.owners().iter() {
                loop {
                    let cur = w.load(Ordering::Acquire);
                    if cur >> (EPOCH_SHIFT + LANE_SHIFT) != lane {
                        break; // not our residue; leave it alone
                    }
                    if w.compare_exchange(cur, 0, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        break;
                    }
                    // Another lane took the word between load and CAS;
                    // re-evaluate (its new stamp is not ours).
                }
            }
        }
    }

    /// The speculation-safety audit sink attached to this space.
    #[cfg(feature = "checker")]
    pub fn audit(&self) -> &optpar_checker::AuditSink {
        &self.audit
    }

    /// Lifetime lock-contention statistics:
    /// `(conflict_losses, cas_retries)`.
    #[cfg(feature = "obs")]
    pub fn contention_counts(&self) -> (u64, u64) {
        (
            self.contended.load(Ordering::Relaxed),
            self.cas_retries.load(Ordering::Relaxed),
        )
    }

    /// Count one lost acquisition (no-op without `obs`).
    #[inline]
    fn note_contention(&self) {
        #[cfg(feature = "obs")]
        self.contended.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one benign CAS retry (no-op without `obs`).
    #[inline]
    fn note_cas_retry(&self) {
        #[cfg(feature = "obs")]
        self.cas_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime shard-locality statistics:
    /// `(shard_homed_acquires, cross_shard_acquires)`. Only tasks
    /// whose first acquisition hit a sharded store contribute.
    #[cfg(feature = "obs")]
    pub fn shard_counts(&self) -> (u64, u64) {
        (
            self.shard_acquires.load(Ordering::Relaxed),
            self.shard_crossings.load(Ordering::Relaxed),
        )
    }

    /// Count one shard-homed acquisition, `cross` if it left the
    /// acquiring task's home shard (`obs` builds only; the caller is
    /// compiled out otherwise).
    #[cfg(feature = "obs")]
    #[inline]
    pub(crate) fn note_shard_acquire(&self, cross: bool) {
        self.shard_acquires.fetch_add(1, Ordering::Relaxed);
        if cross {
            self.shard_crossings.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current owner of lock `l`: `None` if free (including words
    /// whose stamping lane has moved on), else the owning slot.
    pub fn owner_of(&self, l: usize) -> Option<usize> {
        let w = self.owners()[l].load(Ordering::Acquire);
        if self.word_is_held(w) {
            Some((w & OWNER_MASK) as usize - 1)
        } else {
            None
        }
    }

    /// Assert every lock is free under every live lane epoch (round /
    /// quiescence boundary invariant). Returns the first held lock on
    /// violation.
    ///
    /// Immediately after [`Self::advance_epoch`] this holds by
    /// construction — the scan exists for tests and debug assertions,
    /// not for the hot path (which needs no check at all).
    pub fn check_all_free(&self) -> Result<(), usize> {
        for (l, w) in self.owners().iter().enumerate() {
            if self.word_is_held(w.load(Ordering::Acquire)) {
                return Err(l);
            }
        }
        Ok(())
    }
}

/// Why a lock acquisition failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// Lost the collision to another task (per the policy).
    Conflict {
        /// The contested lock index.
        lock: usize,
        /// The slot currently holding it.
        holder: usize,
    },
    /// This task was doomed by a higher-priority thief.
    Doomed,
}

/// Attempt to acquire lock `l` for task `slot` under `policy`,
/// stamping lane 0's current tag (the round-synchronous and
/// continuous modes).
///
/// `states` is the per-round task-state array. Returns `Ok(true)` if
/// newly acquired, `Ok(false)` if already held (reentrant).
#[cfg_attr(not(test), allow(dead_code))] // production paths go through TaskCtx's cached tag
pub(crate) fn acquire(
    space: &LockSpace,
    states: &[AtomicU8],
    policy: ConflictPolicy,
    slot: usize,
    l: usize,
) -> Result<bool, AcquireError> {
    acquire_tagged(space, states, policy, slot, space.epoch_tag(), l)
}

/// Attempt to acquire lock `l` for task `slot` under `policy`,
/// stamping `tag` (the caller's lane tag, cached for the batch).
///
/// A word is *held* iff its owner bits are set and its tag is live:
/// either it equals ours (our lane's current epoch — we only run
/// while that holds), or it belongs to a *different* lane whose
/// current epoch still matches. A same-lane word with a different
/// epoch is retired-batch residue and therefore free; this keeps the
/// lane-0 fast path identical to the classic single-epoch check (no
/// extra loads on stale words).
pub(crate) fn acquire_tagged(
    space: &LockSpace,
    states: &[AtomicU8],
    policy: ConflictPolicy,
    slot: usize,
    tag: u64,
    l: usize,
) -> Result<bool, AcquireError> {
    let owners = space.owners();
    let me = (tag << EPOCH_SHIFT) | (slot as u64 + 1);
    loop {
        // A doomed task must stop acquiring.
        if states[slot].load(Ordering::Acquire) == state::DOOMED {
            return Err(AcquireError::Doomed);
        }
        let cur = owners[l].load(Ordering::Acquire);
        let cur_tag = cur >> EPOCH_SHIFT;
        let held = cur & OWNER_MASK != 0
            && (cur_tag == tag
                || (cur_tag >> LANE_SHIFT != tag >> LANE_SHIFT && space.tag_is_live(cur_tag)));
        if !held {
            // Free — either genuinely (owner 0) or by epoch staleness.
            if owners[l]
                .compare_exchange(cur, me, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Ok(true);
            }
            space.note_cas_retry();
            continue; // someone raced us; re-evaluate
        }
        if cur == me {
            return Ok(false); // reentrant
        }
        let other = (cur & OWNER_MASK) as usize - 1;
        match policy {
            ConflictPolicy::FirstWins => {
                space.note_contention();
                return Err(AcquireError::Conflict {
                    lock: l,
                    holder: other,
                });
            }
            ConflictPolicy::PriorityWins => {
                if slot >= other {
                    // The holder has higher priority; we lose.
                    space.note_contention();
                    return Err(AcquireError::Conflict {
                        lock: l,
                        holder: other,
                    });
                }
                // Try to doom the victim while it is still in its
                // acquire phase; success (or an already-doomed victim)
                // licenses the steal because the victim has not touched
                // data and will observe DOOMED before it does.
                let doomed = states[other]
                    .compare_exchange(
                        state::ACQUIRING,
                        state::DOOMED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                    || states[other].load(Ordering::Acquire) == state::DOOMED;
                if doomed {
                    // Steal: the owner word may have changed under us
                    // (e.g. the victim rolled back and released); CAS
                    // and re-evaluate on failure.
                    if owners[l]
                        .compare_exchange(cur, me, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return Ok(true);
                    }
                    space.note_cas_retry();
                    continue;
                }
                // Victim already accessing/committed: we lose.
                space.note_contention();
                return Err(AcquireError::Conflict {
                    lock: l,
                    holder: other,
                });
            }
        }
    }
}

/// Release every lock in `lockset` held by `slot` under lane 0's
/// current epoch, skipping stolen entries. Used by aborting tasks
/// (which must free their words within the round) and by unit tests;
/// committed tasks rely on [`LockSpace::advance_epoch`] instead.
pub(crate) fn release_all(space: &LockSpace, slot: usize, lockset: &[usize]) {
    release_all_tagged(space, slot, space.epoch_tag(), lockset)
}

/// Release every lock in `lockset` held by `slot` under `tag` (the
/// caller's cached lane tag), skipping stolen entries. Aborting
/// pipelined tasks must free their words within their batch;
/// committed ones rely on [`LockSpace::advance_lane`] instead.
pub(crate) fn release_all_tagged(space: &LockSpace, slot: usize, tag: u64, lockset: &[usize]) {
    let owners = space.owners();
    let me = (tag << EPOCH_SHIFT) | (slot as u64 + 1);
    let free = tag << EPOCH_SHIFT;
    for &l in lockset {
        // A stolen lock no longer carries our mark; leave it alone.
        let _ = owners[l].compare_exchange(me, free, Ordering::AcqRel, Ordering::Acquire);
        // Stale-owner assertion: whatever the CAS outcome, the word
        // must no longer carry this slot's current-epoch mark (either
        // we freed it or a thief overwrote it).
        #[cfg(feature = "checker")]
        if owners[l].load(Ordering::Acquire) == me {
            space
                .audit()
                .report_now(optpar_checker::Report::EpochInvariant {
                    epoch: space.epoch(),
                    detail: format!("lock {l} still owned by slot {slot} after its release"),
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states(n: usize) -> Vec<AtomicU8> {
        (0..n).map(|_| AtomicU8::new(state::ACQUIRING)).collect()
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let mut b = LockSpace::builder();
        let r1 = b.region(10);
        let r2 = b.region(5);
        let space = b.build();
        assert_eq!(space.len(), 15);
        assert_eq!(r1.base(), 0);
        assert_eq!(r2.base(), 10);
        assert_eq!(r1.lock_of(9), 9);
        assert_eq!(r2.lock_of(0), 10);
        assert_eq!(space.regions().len(), 2);
        assert!(space.check_all_free().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn lock_of_bounds() {
        let mut b = LockSpace::builder();
        let r = b.region(3);
        let _ = b.build();
        let _ = r.lock_of(3);
    }

    #[test]
    fn aligned_regions_start_on_cache_lines() {
        let mut b = LockSpace::builder();
        let r0 = b.region(3); // deliberately misalign the cursor
        let r1 = b.region_aligned(20);
        let r2 = b.region_aligned(5);
        let space = b.build();
        assert_eq!(r0.base(), 0);
        assert_eq!(r1.base(), 8);
        assert_eq!(r2.base(), 32);
        assert_eq!(space.len(), 37);
        // The word array itself starts on a 64-byte boundary, so every
        // line-multiple base is absolutely 64-byte aligned.
        let addr = space.owners().as_ptr() as usize;
        assert_eq!(addr % 64, 0, "owner words must be cache-line aligned");
        for r in [r1, r2] {
            let base_addr = &space.owners()[r.base()] as *const _ as usize;
            assert_eq!(base_addr % 64, 0, "region base must start a line");
        }
        // Skipped alignment-gap words exist but belong to no region
        // and read free forever.
        assert!(space.check_all_free().is_ok());
        assert_eq!(space.owner_of(5), None);
    }

    #[test]
    fn basic_acquire_release() {
        let mut b = LockSpace::builder();
        let _ = b.region(4);
        let space = b.build();
        let st = states(2);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 0, 2),
            Ok(true)
        );
        assert_eq!(space.owner_of(2), Some(0));
        // Reentrant.
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 0, 2),
            Ok(false)
        );
        // Contender loses under first-wins.
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 1, 2),
            Err(AcquireError::Conflict { lock: 2, holder: 0 })
        );
        release_all(&space, 0, &[2]);
        assert_eq!(space.owner_of(2), None);
        assert!(space.check_all_free().is_ok());
    }

    #[test]
    fn priority_steal_from_acquiring_victim() {
        let mut b = LockSpace::builder();
        let _ = b.region(1);
        let space = b.build();
        let st = states(2);
        // Slot 1 (lower priority) takes the lock first.
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::PriorityWins, 1, 0),
            Ok(true)
        );
        // Slot 0 steals it and dooms slot 1.
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::PriorityWins, 0, 0),
            Ok(true)
        );
        assert_eq!(space.owner_of(0), Some(0));
        assert_eq!(st[1].load(Ordering::Acquire), state::DOOMED);
        // The victim's release must not clobber the thief's ownership.
        release_all(&space, 1, &[0]);
        assert_eq!(space.owner_of(0), Some(0));
    }

    #[test]
    fn priority_cannot_steal_from_accessing_victim() {
        let mut b = LockSpace::builder();
        let _ = b.region(1);
        let space = b.build();
        let st = states(2);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::PriorityWins, 1, 0),
            Ok(true)
        );
        // Victim enters its access phase.
        st[1].store(state::ACCESSING, Ordering::Release);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::PriorityWins, 0, 0),
            Err(AcquireError::Conflict { lock: 0, holder: 1 })
        );
        assert_eq!(space.owner_of(0), Some(1));
    }

    #[test]
    fn lower_priority_never_steals() {
        let mut b = LockSpace::builder();
        let _ = b.region(1);
        let space = b.build();
        let st = states(2);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::PriorityWins, 0, 0),
            Ok(true)
        );
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::PriorityWins, 1, 0),
            Err(AcquireError::Conflict { lock: 0, holder: 0 })
        );
        assert_eq!(st[0].load(Ordering::Acquire), state::ACQUIRING);
    }

    #[test]
    fn doomed_task_cannot_acquire() {
        let mut b = LockSpace::builder();
        let _ = b.region(2);
        let space = b.build();
        let st = states(1);
        st[0].store(state::DOOMED, Ordering::Release);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 0, 1),
            Err(AcquireError::Doomed)
        );
    }

    #[test]
    fn epoch_bump_frees_held_words_in_o1() {
        let mut b = LockSpace::builder();
        let _ = b.region(8);
        let space = b.build();
        let st = states(3);
        for l in 0..8 {
            assert_eq!(
                acquire(&space, &st, ConflictPolicy::FirstWins, l % 3, l),
                Ok(true)
            );
        }
        assert!(space.check_all_free().is_err(), "words are held");
        let e0 = space.epoch();
        space.advance_epoch();
        assert_eq!(space.epoch(), e0 + 1);
        // No release traversal happened, yet everything reads free.
        assert!(space.check_all_free().is_ok());
        for l in 0..8 {
            assert_eq!(space.owner_of(l), None, "stale word {l} must read free");
        }
        // The words are re-acquirable under the new epoch.
        let st2 = states(1);
        assert_eq!(
            acquire(&space, &st2, ConflictPolicy::FirstWins, 0, 3),
            Ok(true)
        );
        assert_eq!(space.owner_of(3), Some(0));
    }

    #[test]
    fn stale_epoch_word_is_never_reported_held() {
        // Regression guard for the epoch encoding: a word written under
        // epoch e must read as free under every later epoch, through
        // owner_of, check_all_free, AND the acquire fast path.
        let mut b = LockSpace::builder();
        let _ = b.region(2);
        let space = b.build();
        let st = states(2);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::PriorityWins, 1, 0),
            Ok(true)
        );
        for step in 1..=100u64 {
            space.advance_epoch();
            assert_eq!(space.owner_of(0), None, "stale at +{step}");
            assert!(space.check_all_free().is_ok(), "stale at +{step}");
        }
        // First-wins acquire by a *different* slot must not conflict
        // with the 100-epochs-stale residue.
        let st2 = states(1);
        assert_eq!(
            acquire(&space, &st2, ConflictPolicy::FirstWins, 0, 0),
            Ok(true),
            "stale word must be treated as free by acquire"
        );
        assert_eq!(space.owner_of(0), Some(0));
    }

    #[test]
    fn release_is_scoped_to_current_epoch() {
        // An abort-path release under epoch e+1 must not resurrect or
        // clobber a same-slot word left over from epoch e.
        let mut b = LockSpace::builder();
        let _ = b.region(1);
        let space = b.build();
        let st = states(1);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 0, 0),
            Ok(true)
        );
        space.advance_epoch();
        // Stale-scoped release: the CAS expects an epoch-current mark,
        // so the stale word is left alone (and still reads free).
        release_all(&space, 0, &[0]);
        assert_eq!(space.owner_of(0), None);
        // Fresh acquire + release round-trips under the new epoch.
        let st2 = states(1);
        assert_eq!(
            acquire(&space, &st2, ConflictPolicy::FirstWins, 0, 0),
            Ok(true)
        );
        release_all(&space, 0, &[0]);
        assert_eq!(space.owner_of(0), None);
        assert!(space.check_all_free().is_ok());
    }

    #[test]
    fn concurrent_acquire_is_exclusive() {
        // N threads hammer one lock; exactly one must win each round.
        use std::sync::atomic::AtomicUsize as Counter;
        let mut b = LockSpace::builder();
        let _ = b.region(1);
        let space = b.build();
        let n = 8;
        let st: Vec<AtomicU8> = states(n);
        let wins = Counter::new(0);
        std::thread::scope(|s| {
            for slot in 0..n {
                let space = &space;
                let st = &st;
                let wins = &wins;
                s.spawn(move || {
                    if acquire(space, st, ConflictPolicy::FirstWins, slot, 0).is_ok() {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_priority_steals_converge_to_highest_priority() {
        // All tasks contend for one lock with stealing: the final owner
        // must be the highest-priority (lowest slot) task that asked,
        // because everyone else either lost or was doomed pre-access.
        let mut b = LockSpace::builder();
        let _ = b.region(1);
        let space = b.build();
        let n = 8;
        let st = states(n);
        std::thread::scope(|s| {
            for slot in 0..n {
                let space = &space;
                let st = &st;
                s.spawn(move || {
                    let _ = acquire(space, st, ConflictPolicy::PriorityWins, slot, 0);
                });
            }
        });
        let owner = space.owner_of(0).expect("someone must own the lock");
        // Every task with priority higher (slot lower) than the owner
        // must have failed *before* the owner acquired, which can only
        // happen if it never requested after the owner took it. The
        // strongest cheap invariant: the owner is not doomed and holds
        // the lock exclusively.
        assert_ne!(st[owner].load(Ordering::Acquire), state::DOOMED);
    }

    /// Drive the epoch across the 24-bit lane-0 tag wraparound: words
    /// stamped with the maximal tag must read free after the wrap
    /// sweep, the monotonic counter must keep counting, and the space
    /// must be immediately reusable under the fresh zero tag.
    #[test]
    fn epoch_tag_wraparound_sweeps_stale_owners() {
        let mut b = LockSpace::builder();
        let _ = b.region(3);
        let space = b.build();

        // Jump to the last epoch before the lane-0 tag wraps (tag =
        // 0x00FF_FFFF) with some high bits set, as after ~6 * 2^24
        // real rounds.
        let pre_wrap: u64 = (6 << LANE_SHIFT) | LANE_EPOCH_MASK;
        space.epoch.store(pre_wrap, Ordering::Release);
        assert_eq!(space.epoch_tag(), LANE_EPOCH_MASK);

        // Stamp locks 0 and 2 under the maximal tag (lock 1 stays 0).
        let st = states(2);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 0, 0),
            Ok(true)
        );
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 1, 2),
            Ok(true)
        );
        assert_eq!(space.owner_of(0), Some(0));
        assert_eq!(space.owner_of(2), Some(1));

        // The round barrier that crosses the wrap. With the checker
        // enabled this also exercises `assert_epoch_step` across the
        // tag boundary and the post-sweep `assert_wrap_swept` audit
        // (panicking if any stale word survived).
        space.advance_epoch();

        // Monotonic counter kept counting; tag wrapped to zero.
        assert_eq!(space.epoch(), pre_wrap + 1);
        assert_eq!(space.epoch_tag(), 0);

        // Stale words were physically swept, not merely out-tagged:
        // a zero tag is the one value a lazy (unswept) expiry scheme
        // would alias, so the sweep must leave literal zeros behind.
        for w in space.owners().iter() {
            assert_eq!(w.load(Ordering::Acquire), 0);
        }
        assert_eq!(space.owner_of(0), None);
        assert_eq!(space.owner_of(2), None);
        assert!(space.check_all_free().is_ok());

        // The space is immediately reusable under the fresh tag.
        let st = states(1);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 0, 0),
            Ok(true)
        );
        assert_eq!(space.owner_of(0), Some(0));
        release_all(&space, 0, &[0]);
        assert_eq!(space.owner_of(0), None);
    }

    /// A non-wrapping epoch step must *not* sweep: expiry of held
    /// locks is lazy (the stale word survives physically but reads
    /// free under the new tag) — that O(1) barrier is the whole point.
    #[test]
    fn ordinary_epoch_step_expires_lazily() {
        let mut b = LockSpace::builder();
        let _ = b.region(1);
        let space = b.build();
        let st = states(1);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 0, 0),
            Ok(true)
        );
        let stamped = space.owners()[0].load(Ordering::Acquire);
        assert_ne!(stamped, 0);

        space.advance_epoch();

        // Word untouched, yet the lock reads free and is reusable.
        assert_eq!(space.owners()[0].load(Ordering::Acquire), stamped);
        assert_eq!(space.owner_of(0), None);
        assert!(space.check_all_free().is_ok());
        let st = states(1);
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 0, 0),
            Ok(true)
        );
    }

    /// Acquire every word under one lane tag, then retire the batch
    /// with a single lane bump: everything must read free with no
    /// release traversal, exactly like the round barrier — but scoped
    /// to that lane.
    #[test]
    fn lane_bump_frees_batch_words_in_o1() {
        let mut b = LockSpace::builder();
        let _ = b.region(8);
        let space = b.build();
        let st = states(3);
        let tag = space.lane_tag(1);
        for l in 0..8 {
            assert_eq!(
                acquire_tagged(&space, &st, ConflictPolicy::FirstWins, l % 3, tag, l),
                Ok(true)
            );
        }
        assert!(space.check_all_free().is_err(), "words are held");
        space.advance_lane(1);
        assert!(
            space.check_all_free().is_ok(),
            "lane bump expires the batch"
        );
        for l in 0..8 {
            assert_eq!(space.owner_of(l), None, "stale word {l} must read free");
        }
        // Immediately reusable under the lane's next epoch.
        let tag2 = space.lane_tag(1);
        assert_ne!(tag, tag2);
        assert_eq!(
            acquire_tagged(&space, &st, ConflictPolicy::FirstWins, 0, tag2, 3),
            Ok(true)
        );
        assert_eq!(space.owner_of(3), Some(0));
    }

    /// Lanes are independent: a bump on one lane must not expire
    /// another lane's held words, nor lane 0's, and vice versa. This
    /// is the no-slow-task-stalls-the-world property at the lock
    /// level.
    #[test]
    fn lane_bump_does_not_disturb_other_lanes() {
        let mut b = LockSpace::builder();
        let _ = b.region(3);
        let space = b.build();
        let st = states(3);
        // Lock 0 under lane 1, lock 1 under lane 2, lock 2 under lane 0.
        assert_eq!(
            acquire_tagged(
                &space,
                &st,
                ConflictPolicy::FirstWins,
                0,
                space.lane_tag(1),
                0
            ),
            Ok(true)
        );
        assert_eq!(
            acquire_tagged(
                &space,
                &st,
                ConflictPolicy::FirstWins,
                1,
                space.lane_tag(2),
                1
            ),
            Ok(true)
        );
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 2, 2),
            Ok(true)
        );
        // Retire lane 2's batch only.
        space.advance_lane(2);
        assert_eq!(space.owner_of(0), Some(0), "lane 1 hold survives");
        assert_eq!(space.owner_of(1), None, "lane 2 hold expired");
        assert_eq!(space.owner_of(2), Some(2), "lane 0 hold survives");
        // A global round barrier expires lane 0 but not lane 1.
        space.advance_epoch();
        assert_eq!(space.owner_of(0), Some(0), "lane 1 hold still survives");
        assert_eq!(space.owner_of(2), None, "lane 0 hold expired");
    }

    /// A live hold in one lane must conflict with an acquirer in a
    /// different lane (cross-batch conflicts are real conflicts), and
    /// expired residue must not.
    #[test]
    fn cross_lane_conflict_and_expiry() {
        let mut b = LockSpace::builder();
        let _ = b.region(1);
        let space = b.build();
        let st = states(4);
        assert_eq!(
            acquire_tagged(
                &space,
                &st,
                ConflictPolicy::FirstWins,
                0,
                space.lane_tag(1),
                0
            ),
            Ok(true)
        );
        // Live cross-lane conflict, from another lane and from lane 0.
        assert_eq!(
            acquire_tagged(
                &space,
                &st,
                ConflictPolicy::FirstWins,
                1,
                space.lane_tag(2),
                0
            ),
            Err(AcquireError::Conflict { lock: 0, holder: 0 })
        );
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 2, 0),
            Err(AcquireError::Conflict { lock: 0, holder: 0 })
        );
        // After the holding lane retires, both may take it.
        space.advance_lane(1);
        assert_eq!(
            acquire_tagged(
                &space,
                &st,
                ConflictPolicy::FirstWins,
                3,
                space.lane_tag(2),
                0
            ),
            Ok(true),
            "stale cross-lane residue must be treated as free"
        );
        assert_eq!(space.owner_of(0), Some(3));
    }

    /// Drive one lane across its 24-bit epoch wraparound: residue
    /// stamped by that lane is CAS-swept to zero, while live words of
    /// other lanes (and lane 0) are untouched.
    #[test]
    fn lane_epoch_wraparound_sweeps_only_that_lane() {
        let mut b = LockSpace::builder();
        let _ = b.region(3);
        let space = b.build();
        let st = states(3);
        // Park lane 3 one step before its epoch wraps.
        space.lanes[3].store(LANE_EPOCH_MASK, Ordering::Release);
        let tag3 = space.lane_tag(3);
        assert_eq!(tag3, (3 << LANE_SHIFT) | LANE_EPOCH_MASK);
        assert_eq!(
            acquire_tagged(&space, &st, ConflictPolicy::FirstWins, 0, tag3, 0),
            Ok(true)
        );
        // Live holds in lane 4 and lane 0 that must survive the sweep.
        assert_eq!(
            acquire_tagged(
                &space,
                &st,
                ConflictPolicy::FirstWins,
                1,
                space.lane_tag(4),
                1
            ),
            Ok(true)
        );
        assert_eq!(
            acquire(&space, &st, ConflictPolicy::FirstWins, 2, 2),
            Ok(true)
        );

        space.advance_lane(3);

        // Lane 3's counter wrapped to a zero epoch and its residue was
        // physically swept (a zero tag is the one value lazy expiry
        // would alias).
        assert_eq!(space.lanes[3].load(Ordering::Acquire) & LANE_EPOCH_MASK, 0);
        assert_eq!(space.owners()[0].load(Ordering::Acquire), 0);
        // The other lanes' words are physically untouched and still held.
        assert_eq!(space.owner_of(1), Some(1));
        assert_eq!(space.owner_of(2), Some(2));
        // Lane 3 is immediately reusable under its fresh zero epoch.
        assert_eq!(
            acquire_tagged(
                &space,
                &st,
                ConflictPolicy::FirstWins,
                0,
                space.lane_tag(3),
                0
            ),
            Ok(true)
        );
        assert_eq!(space.owner_of(0), Some(0));
    }

    /// Tagged release is scoped to the releasing batch: it frees the
    /// caller's own live words, skips residue from its previous batch,
    /// and never clobbers another lane's live hold on a recycled word.
    #[test]
    fn tagged_release_is_scoped_to_its_batch() {
        let mut b = LockSpace::builder();
        let _ = b.region(2);
        let space = b.build();
        let st = states(2);
        let tag = space.lane_tag(1);
        assert_eq!(
            acquire_tagged(&space, &st, ConflictPolicy::FirstWins, 0, tag, 0),
            Ok(true)
        );
        assert_eq!(
            acquire_tagged(&space, &st, ConflictPolicy::FirstWins, 0, tag, 1),
            Ok(true)
        );
        // Lock 1's batch retires; lock 0 is then re-taken by lane 2
        // under the same slot number.
        space.advance_lane(1);
        assert_eq!(
            acquire_tagged(
                &space,
                &st,
                ConflictPolicy::FirstWins,
                0,
                space.lane_tag(2),
                0
            ),
            Ok(true)
        );
        // A release under the *old* lane-1 tag can only clear words
        // still physically carrying that exact dead stamp (harmless:
        // they already read free); it must never clobber lane 2's
        // live hold on the recycled word 0, even from the same slot.
        release_all_tagged(&space, 0, tag, &[0, 1]);
        assert_eq!(space.owner_of(0), Some(0), "lane 2's hold survives");
        // A release under the current lane tag frees a live abort.
        let tag1b = space.lane_tag(1);
        assert_eq!(
            acquire_tagged(&space, &st, ConflictPolicy::FirstWins, 1, tag1b, 1),
            Ok(true)
        );
        release_all_tagged(&space, 1, tag1b, &[1]);
        assert_eq!(space.owner_of(1), None);
    }
}

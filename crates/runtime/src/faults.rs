//! Fault model: structured task faults, the per-executor fault log,
//! and (feature `faults`) deterministic fault injection.
//!
//! The paper's premise is that speculative tasks *fail routinely* — a
//! conflict ratio of 20–30% is the target operating point — so the
//! runtime treats misspeculation as a first-class, recoverable event.
//! This module extends that stance from the one benign failure mode
//! (lock-conflict abort) to the ugly ones:
//!
//! * **Panic containment** — the executor wraps every
//!   [`Operator::execute`](crate::task::Operator::execute) call in
//!   `catch_unwind`. A panicking task is rolled back exactly like a
//!   conflict abort (its undo snapshots were recorded *before* any
//!   `&mut` was handed out, so the replay is always sound), its locks
//!   are released, the worker thread survives, and a structured
//!   [`TaskFault`] lands in the executor's [`FaultLog`] instead of
//!   tearing down the pool.
//! * **Deterministic injection** (feature `faults`) — a seeded
//!   [`FaultPlan`] decides, as a pure function of `(seed, epoch,
//!   slot)`, whether a task panics, delays, or spuriously aborts
//!   mid-flight, so every recovery path is exercised reproducibly.
//! * **Retry budgets** — the [`WorkSet`](crate::exec::WorkSet) counts
//!   aborts per task; `exec.rs` ages tasks past their budget to the
//!   front of the next round's prefix (greedy-MIS-winning by
//!   construction) and a watchdog shrinks `m` toward 1 when rounds
//!   stall (Prop. 1: `r̄(1) = 0`, so progress is guaranteed).
//!
//! What is *recoverable*: operator panics, injected faults, poisoned
//! executor-internal mutexes, lost result slots. What stays *fatal*:
//! panics in the runtime's own lock/undo machinery outside the
//! contained region (they indicate a broken invariant, not a broken
//! operator), and misconfiguration asserts (zero workers, oversized
//! rounds).

#[cfg(feature = "faults")]
use std::sync::Mutex;
use std::sync::PoisonError;

/// Why a task (or a round-internal structure) faulted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultCause {
    /// The operator panicked; the panic was contained and the task
    /// rolled back.
    OperatorPanic,
    /// An injected fault from a [`FaultPlan`] fired (feature
    /// `faults`).
    Injected,
    /// A parallel round produced no result for this slot (a worker
    /// was lost outside the contained operator path). The task is
    /// re-queued; its locks expire with the round's epoch bump.
    MissingResult,
    /// The executor's scratch mutex was found poisoned and recovered
    /// (the state buffer is rewritten every round, so recovery is
    /// sound).
    PoisonedScratch,
}

impl FaultCause {
    /// Stable numeric code for trace events (`0` is reserved for
    /// "unknown"). The mapping is part of the trace format: changing
    /// it invalidates recorded traces.
    pub fn code(&self) -> u8 {
        match self {
            FaultCause::OperatorPanic => 1,
            FaultCause::Injected => 2,
            FaultCause::MissingResult => 3,
            FaultCause::PoisonedScratch => 4,
        }
    }
}

impl std::fmt::Display for FaultCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultCause::OperatorPanic => write!(f, "operator panic"),
            FaultCause::Injected => write!(f, "injected fault"),
            FaultCause::MissingResult => write!(f, "missing result slot"),
            FaultCause::PoisonedScratch => write!(f, "poisoned scratch mutex"),
        }
    }
}

/// One structured, non-fatal runtime fault: the recoverable
/// counterpart of what used to be a process-killing `unwrap`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskFault {
    /// Epoch of the round in which the fault occurred.
    pub epoch: u64,
    /// Round slot of the faulting task (`None` for faults not tied to
    /// a task, e.g. a poisoned scratch mutex).
    pub slot: Option<usize>,
    /// What happened.
    pub cause: FaultCause,
    /// Human-readable detail (panic payload, injection coordinates).
    pub detail: String,
}

impl std::fmt::Display for TaskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.slot {
            Some(s) => write!(
                f,
                "epoch {} slot {s}: {} ({})",
                self.epoch, self.cause, self.detail
            ),
            None => write!(f, "epoch {}: {} ({})", self.epoch, self.cause, self.detail),
        }
    }
}

/// A task retired from the work-set for good: it faulted again while
/// already at `retries ≥` the executor's
/// [`dead_letter_budget`](crate::exec::ExecutorConfig::dead_letter_budget).
/// Instead of being silently re-queued forever it is surfaced to the
/// job owner via [`Executor::take_dead_letters`](crate::exec::Executor::take_dead_letters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadLetter {
    /// Epoch of the round in which the final fault occurred.
    pub epoch: u64,
    /// Round slot of the final fault (mirrors [`TaskFault::slot`]).
    pub slot: Option<usize>,
    /// Retry count at retirement (≥ the configured budget).
    pub retries: u32,
    /// Cause of the final fault.
    pub cause: FaultCause,
    /// Detail string of the final fault.
    pub detail: String,
}

impl std::fmt::Display for DeadLetter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dead-lettered after {} retries at epoch {}: {} ({})",
            self.retries, self.epoch, self.cause, self.detail
        )
    }
}

/// Default bound on undrained [`FaultLog`] entries: far above any
/// single run's fault volume, small enough that a long-running
/// service under sustained injection cannot grow without limit.
pub const DEFAULT_FAULT_LOG_CAP: usize = 4096;

/// Accumulated faults of an executor. Entries can be drained for
/// inspection ([`FaultLog::drain`]); the total count is monotone.
///
/// The undrained buffer is bounded (like the obs layer's `EventRing`):
/// once [`FaultLog::capacity`] entries sit undrained, further pushes
/// drop the *incoming* fault and bump [`FaultLog::dropped`] instead of
/// growing — [`FaultLog::total`] still counts every push, so the loss
/// is visible, never silent.
#[derive(Debug)]
pub struct FaultLog {
    entries: Vec<TaskFault>,
    total: usize,
    cap: usize,
    dropped: usize,
}

impl Default for FaultLog {
    fn default() -> Self {
        FaultLog::with_capacity(DEFAULT_FAULT_LOG_CAP)
    }
}

impl FaultLog {
    /// A log holding at most `cap` (≥ 1) undrained entries.
    pub fn with_capacity(cap: usize) -> Self {
        FaultLog {
            entries: Vec::new(),
            total: 0,
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Record one fault. Dropped (not stored) when the undrained
    /// buffer is at capacity; draining frees space again.
    pub fn push(&mut self, fault: TaskFault) {
        self.total += 1;
        if self.entries.len() >= self.cap {
            self.dropped += 1;
        } else {
            self.entries.push(fault);
        }
    }

    /// Bound on undrained entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Faults dropped because the undrained buffer was full
    /// (monotone; 0 means [`FaultLog::entries`] is complete).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Faults recorded and not yet drained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No undrained faults?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total faults ever recorded (drains do not reset this).
    pub fn total(&self) -> usize {
        self.total
    }

    /// The undrained entries.
    pub fn entries(&self) -> &[TaskFault] {
        &self.entries
    }

    /// Remove and return all undrained entries.
    pub fn drain(&mut self) -> Vec<TaskFault> {
        std::mem::take(&mut self.entries)
    }
}

/// Recover a possibly-poisoned lock acquisition: a poisoned mutex
/// means some thread panicked while holding the guard, and every
/// structure the runtime protects this way is either rewritten before
/// reuse (scratch state buffers) or valid at every intermediate step
/// (work-set vectors, counters), so the data is still consistent and
/// the guard can be used as-is.
pub(crate) fn recover<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Render a caught panic payload for a fault record.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Classify a caught panic payload: injected faults carry an
/// [`InjectedPanic`] payload; anything else is the operator's own.
pub(crate) fn classify_panic(payload: &(dyn std::any::Any + Send)) -> (FaultCause, String) {
    #[cfg(feature = "faults")]
    if let Some(ip) = payload.downcast_ref::<InjectedPanic>() {
        return (FaultCause::Injected, ip.0.clone());
    }
    (FaultCause::OperatorPanic, panic_detail(payload))
}

/// Panic payload used by injected [`FaultKind::Panic`] faults, so the
/// containment layer can tell them apart from genuine operator bugs.
#[cfg(feature = "faults")]
pub(crate) struct InjectedPanic(pub String);

/// Install a process-global panic hook that suppresses the default
/// stderr report (message plus backtrace) for *injected* panics,
/// delegating every other panic to the previously-installed hook.
/// Chaos harnesses call this once at startup so a ~10% injection
/// schedule does not flood logs with thousands of backtraces; the
/// executor still contains and accounts each injected panic exactly
/// as before — only the default hook's printing is skipped.
#[cfg(feature = "faults")]
pub fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<InjectedPanic>().is_none() {
            prev(info);
        }
    }));
}

/// The kind of an injected fault.
#[cfg(feature = "faults")]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic inside the operator after a few context operations
    /// (exercises `catch_unwind` containment and undo replay).
    Panic,
    /// Return [`Abort::Fault`](crate::task::Abort::Fault) from a
    /// context operation (exercises the structured-abort path without
    /// unwinding).
    SpuriousAbort,
    /// Spin for a while inside a context operation (widens the
    /// conflict window in parallel rounds; exercises straggler
    /// handling).
    Delay,
    /// Poison the executor's scratch mutex at the start of a round
    /// (exercises mutex-poison recovery). Only fired via
    /// [`FaultPlan::poison_scratch_at`], never from rates.
    PoisonScratch,
}

/// One fault that actually fired, for accounting.
#[cfg(feature = "faults")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Epoch at firing time.
    pub epoch: u64,
    /// Round slot of the targeted task (`usize::MAX` for
    /// [`FaultKind::PoisonScratch`], which targets the round itself).
    pub slot: usize,
    /// What fired.
    pub kind: FaultKind,
}

/// A deterministic, seeded fault-injection plan.
///
/// Whether a fault fires for a given task is a pure function of
/// `(seed, epoch, slot)` — no wall clock, no global RNG — so a run
/// with a fixed workload seed and a fixed plan seed replays the exact
/// same fault schedule. Rates are sampled per launched task via a
/// splitmix64 hash; exact coordinates can be pinned with
/// [`FaultPlan::at`].
///
/// Every fault that fires is recorded; [`FaultPlan::fired`] is the
/// injection-side ledger that tests reconcile against the executor's
/// [`FaultLog`].
#[cfg(feature = "faults")]
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Per-64k firing weights (65536 = always).
    panic_w: u32,
    spurious_w: u32,
    delay_w: u32,
    delay_spins: u32,
    targeted: std::collections::HashMap<(u64, usize), FaultKind>,
    poison_epochs: Mutex<std::collections::HashSet<u64>>,
    fired: Mutex<Vec<FaultRecord>>,
}

#[cfg(feature = "faults")]
impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_spins: 1_000,
            ..FaultPlan::default()
        }
    }

    fn weight(rate: f64) -> u32 {
        (rate.clamp(0.0, 1.0) * 65536.0) as u32
    }

    /// Panic a fraction `rate` of launched tasks.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_w = Self::weight(rate);
        self
    }

    /// Spuriously abort a fraction `rate` of launched tasks.
    pub fn with_spurious_abort_rate(mut self, rate: f64) -> Self {
        self.spurious_w = Self::weight(rate);
        self
    }

    /// Delay a fraction `rate` of launched tasks by `spins` spin-loop
    /// iterations (no timers: the round path is `Instant`-free).
    pub fn with_delay_rate(mut self, rate: f64, spins: u32) -> Self {
        self.delay_w = Self::weight(rate);
        self.delay_spins = spins;
        self
    }

    /// Pin a fault of `kind` to the task at `(epoch, slot)`,
    /// overriding the rates for that coordinate. `PoisonScratch` must
    /// use [`FaultPlan::poison_scratch_at`] instead.
    pub fn at(mut self, epoch: u64, slot: usize, kind: FaultKind) -> Self {
        assert!(
            kind != FaultKind::PoisonScratch,
            "use poison_scratch_at for scratch poisoning"
        );
        self.targeted.insert((epoch, slot), kind);
        self
    }

    /// Poison the executor's scratch mutex at the start of the round
    /// running under `epoch` (fires at most once per epoch).
    pub fn poison_scratch_at(self, epoch: u64) -> Self {
        recover(self.poison_epochs.lock()).insert(epoch);
        self
    }

    /// Number of spin iterations an injected delay burns.
    pub(crate) fn delay_spins(&self) -> u32 {
        self.delay_spins
    }

    /// Decide the fault (if any) for the task at `(epoch, slot)`.
    /// Returns the kind plus a countdown of context operations to let
    /// through before firing (so faults land mid-task, not only on
    /// the first lock).
    pub(crate) fn draw(&self, epoch: u64, slot: usize) -> Option<(FaultKind, u32)> {
        let h = mix(self.seed, epoch, slot as u64);
        let countdown = ((h >> 16) & 0x3) as u32;
        if let Some(&kind) = self.targeted.get(&(epoch, slot)) {
            return Some((kind, countdown));
        }
        let roll = (h & 0xFFFF) as u32;
        if roll < self.panic_w {
            Some((FaultKind::Panic, countdown))
        } else if roll < self.panic_w + self.spurious_w {
            Some((FaultKind::SpuriousAbort, countdown))
        } else if roll < self.panic_w + self.spurious_w + self.delay_w {
            Some((FaultKind::Delay, countdown))
        } else {
            None
        }
    }

    /// Should the scratch mutex be poisoned for `epoch`? Consumes the
    /// coordinate so it fires once, and records the firing.
    pub(crate) fn take_scratch_poison(&self, epoch: u64) -> bool {
        let hit = recover(self.poison_epochs.lock()).remove(&epoch);
        if hit {
            self.record(FaultRecord {
                epoch,
                slot: usize::MAX,
                kind: FaultKind::PoisonScratch,
            });
        }
        hit
    }

    /// Ledger one fired fault.
    pub(crate) fn record(&self, rec: FaultRecord) {
        recover(self.fired.lock()).push(rec);
    }

    /// Every fault that has fired so far, in firing order.
    pub fn fired(&self) -> Vec<FaultRecord> {
        recover(self.fired.lock()).clone()
    }

    /// Number of faults fired so far.
    pub fn fired_count(&self) -> usize {
        recover(self.fired.lock()).len()
    }
}

/// A fault armed on one task's context, ticking down context
/// operations until it fires.
#[cfg(feature = "faults")]
pub(crate) struct ArmedFault<'p> {
    pub(crate) plan: &'p FaultPlan,
    pub(crate) epoch: u64,
    pub(crate) kind: FaultKind,
    pub(crate) countdown: u32,
}

#[cfg(feature = "faults")]
impl ArmedFault<'_> {
    /// Fire the fault. Records it in the plan's ledger first, so even
    /// a panicking fault is accounted before it unwinds.
    pub(crate) fn fire(self, slot: usize) -> Result<(), crate::task::Abort> {
        self.plan.record(FaultRecord {
            epoch: self.epoch,
            slot,
            kind: self.kind,
        });
        match self.kind {
            // PANIC-OK: the injected panic is the fault being tested; it is
            // thrown to be caught by the executor's containment boundary.
            FaultKind::Panic => std::panic::panic_any(InjectedPanic(format!(
                "injected panic at epoch {} slot {slot}",
                self.epoch
            ))),
            FaultKind::SpuriousAbort => Err(crate::task::Abort::Fault),
            FaultKind::Delay => {
                for _ in 0..self.plan.delay_spins() {
                    std::hint::spin_loop();
                }
                Ok(())
            }
            // Scratch poisoning is executor-level; it is never armed
            // on a task context.
            FaultKind::PoisonScratch => Ok(()),
        }
    }
}

/// splitmix64 finalizer: the standard 64-bit avalanche.
#[cfg(feature = "faults")]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash `(seed, epoch, slot)` into one decision word.
#[cfg(feature = "faults")]
fn mix(seed: u64, epoch: u64, slot: u64) -> u64 {
    splitmix64(seed ^ splitmix64(epoch.wrapping_mul(0xA24B_AED4_963E_E407) ^ splitmix64(slot)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_log_counts_and_drains() {
        let mut log = FaultLog::default();
        assert!(log.is_empty());
        log.push(TaskFault {
            epoch: 3,
            slot: Some(1),
            cause: FaultCause::OperatorPanic,
            detail: "boom".into(),
        });
        log.push(TaskFault {
            epoch: 3,
            slot: None,
            cause: FaultCause::PoisonedScratch,
            detail: "poisoned".into(),
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.total(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
        assert_eq!(log.total(), 2, "total is monotone across drains");
        assert_eq!(drained[0].cause, FaultCause::OperatorPanic);
        assert!(drained[1].to_string().contains("poisoned scratch"));
    }

    #[test]
    fn fault_log_is_bounded_and_counts_drops() {
        let mut log = FaultLog::with_capacity(3);
        assert_eq!(log.capacity(), 3);
        let fault = |i: u64| TaskFault {
            epoch: i,
            slot: Some(0),
            cause: FaultCause::OperatorPanic,
            detail: "boom".into(),
        };
        for i in 0..5 {
            log.push(fault(i));
        }
        // The buffer holds the first `cap` entries; the overflow is
        // dropped but still counted.
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.total(), 5, "total counts dropped pushes too");
        assert_eq!(log.entries()[2].epoch, 2, "incoming entries are dropped");
        // Draining frees space: pushes land again, the drop counter
        // stays monotone.
        let drained = log.drain();
        assert_eq!(drained.len(), 3);
        log.push(fault(9));
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.total(), 6);
    }

    #[test]
    fn fault_log_capacity_floor_is_one() {
        let log = FaultLog::with_capacity(0);
        assert_eq!(log.capacity(), 1);
        assert_eq!(FaultLog::default().capacity(), DEFAULT_FAULT_LOG_CAP);
    }

    #[test]
    fn recover_unwraps_clean_and_poisoned() {
        let m = std::sync::Mutex::new(7u32);
        *recover(m.lock()) = 8;
        // Poison it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*recover(m.lock()), 8, "recovered guard sees valid data");
    }

    #[test]
    fn panic_detail_renders_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_detail(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_detail(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_detail(s.as_ref()), "non-string panic payload");
    }

    #[cfg(feature = "faults")]
    mod injection {
        use super::super::*;

        #[test]
        fn draw_is_deterministic() {
            let a = FaultPlan::seeded(7).with_panic_rate(0.5);
            let b = FaultPlan::seeded(7).with_panic_rate(0.5);
            for epoch in 0..50 {
                for slot in 0..50 {
                    assert_eq!(a.draw(epoch, slot), b.draw(epoch, slot));
                }
            }
        }

        #[test]
        fn rates_are_roughly_respected() {
            let plan = FaultPlan::seeded(11).with_panic_rate(0.10);
            let mut hits = 0;
            let trials = 20_000;
            for i in 0..trials {
                if plan.draw(i / 100, (i % 100) as usize).is_some() {
                    hits += 1;
                }
            }
            let rate = hits as f64 / trials as f64;
            assert!((rate - 0.10).abs() < 0.02, "observed rate {rate}");
        }

        #[test]
        fn zero_rate_plan_never_fires() {
            let plan = FaultPlan::seeded(3);
            for epoch in 0..100 {
                for slot in 0..100 {
                    assert_eq!(plan.draw(epoch, slot), None);
                }
            }
        }

        #[test]
        fn targeted_coordinates_override_rates() {
            let plan = FaultPlan::seeded(5).at(4, 2, FaultKind::SpuriousAbort);
            let (kind, _) = plan.draw(4, 2).expect("targeted fault must fire");
            assert_eq!(kind, FaultKind::SpuriousAbort);
            assert_eq!(plan.draw(4, 3), None);
        }

        #[test]
        fn scratch_poison_fires_once_and_is_ledgered() {
            let plan = FaultPlan::seeded(9).poison_scratch_at(6);
            assert!(!plan.take_scratch_poison(5));
            assert!(plan.take_scratch_poison(6));
            assert!(!plan.take_scratch_poison(6), "consumed after firing");
            let fired = plan.fired();
            assert_eq!(fired.len(), 1);
            assert_eq!(fired[0].kind, FaultKind::PoisonScratch);
            assert_eq!(fired[0].epoch, 6);
        }

        #[test]
        fn rate_kinds_partition_the_roll() {
            // With rates summing to 1 every draw fires, and all three
            // kinds appear.
            let plan = FaultPlan::seeded(13)
                .with_panic_rate(0.4)
                .with_spurious_abort_rate(0.3)
                .with_delay_rate(0.3, 10);
            let mut seen = std::collections::HashSet::new();
            for slot in 0..200 {
                let (kind, countdown) = plan.draw(0, slot).expect("rates sum to 1");
                assert!(countdown < 4);
                seen.insert(kind);
            }
            assert!(seen.contains(&FaultKind::Panic));
            assert!(seen.contains(&FaultKind::SpuriousAbort));
            assert!(seen.contains(&FaultKind::Delay));
        }
    }
}

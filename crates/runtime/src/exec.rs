//! The round-based speculative executor.
//!
//! Each round mirrors one temporal step of the paper's model:
//!
//! 1. Draw `m` tasks uniformly at random from the [`WorkSet`] (their
//!    draw order is the commit priority).
//! 2. Run them speculatively across `workers` OS threads; conflicts are
//!    detected by the abstract locks, losers roll back.
//! 3. Committed tasks leave the system and may spawn new tasks; aborted
//!    tasks return to the work-set for a later round.
//! 4. Report `(launched, aborted)` to the processor-allocation
//!    controller, which picks the next round's `m`.
//!
//! With `workers == 1` the executor runs tasks inline in priority
//! order, which makes it *bitwise deterministic* given the RNG seed —
//! the differential-testing anchor against the sequential model in
//! `optpar-core`.

use crate::lock::{state, ConflictPolicy, LockSpace};
use crate::stats::{RoundStats, RunStats};
use crate::task::{Operator, TaskCtx};
use optpar_core::control::Controller;
use rand::Rng;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// The pending-task multiset (the paper's work-set).
///
/// Uniform random sampling without replacement is O(m) via partial
/// Fisher-Yates over the backing vector.
#[derive(Clone, Debug, Default)]
pub struct WorkSet<T> {
    tasks: Vec<T>,
}

impl<T> WorkSet<T> {
    /// An empty work-set.
    pub fn new() -> Self {
        WorkSet { tasks: Vec::new() }
    }

    /// Wrap an existing task list.
    pub fn from_vec(tasks: Vec<T>) -> Self {
        WorkSet { tasks }
    }

    /// Add one task.
    pub fn push(&mut self, t: T) {
        self.tasks.push(t);
    }

    /// Add many tasks.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, it: I) {
        self.tasks.extend(it);
    }

    /// Pending task count.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Is the work-set drained?
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Remove and return `min(m, len)` tasks drawn uniformly at random;
    /// the returned order is the commit-priority order.
    pub fn sample_drain<R: Rng + ?Sized>(&mut self, m: usize, rng: &mut R) -> Vec<T> {
        let n = self.tasks.len();
        let m = m.min(n);
        for i in 0..m {
            let j = rng.random_range(i..n);
            self.tasks.swap(i, j);
        }
        self.tasks.drain(..m).collect()
    }
}

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Worker threads. 1 = deterministic inline execution.
    pub workers: usize,
    /// Conflict arbitration policy.
    pub policy: ConflictPolicy,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            policy: ConflictPolicy::FirstWins,
        }
    }
}

/// The speculative executor: pairs an [`Operator`] with a
/// [`LockSpace`].
pub struct Executor<'a, O: Operator> {
    op: &'a O,
    space: &'a LockSpace,
    cfg: ExecutorConfig,
}

/// Outcome of one task within a round.
enum TaskResult<T> {
    /// Committed; `lockset` stays held until the round barrier (the
    /// model's semantics: later tasks of the round conflict with
    /// committed ones regardless of execution interleaving).
    Committed {
        spawned: Vec<T>,
        acquires: usize,
        lockset: Vec<usize>,
    },
    Aborted { acquires: usize },
}

impl<'a, O: Operator> Executor<'a, O> {
    /// Pair an operator with its lock space under the given config.
    pub fn new(op: &'a O, space: &'a LockSpace, cfg: ExecutorConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        Executor { op, space, cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.cfg
    }

    /// The lock space this executor arbitrates over.
    pub(crate) fn space(&self) -> &'a LockSpace {
        self.space
    }

    /// The operator being executed.
    pub(crate) fn op(&self) -> &'a O {
        self.op
    }

    /// Run one round launching up to `m` tasks from `ws`.
    pub fn run_round<R: Rng + ?Sized>(
        &self,
        ws: &mut WorkSet<O::Task>,
        m: usize,
        rng: &mut R,
    ) -> RoundStats {
        let batch = ws.sample_drain(m, rng);
        let launched = batch.len();
        if launched == 0 {
            return RoundStats {
                m,
                ..RoundStats::default()
            };
        }
        let states: Vec<AtomicU8> = (0..launched)
            .map(|_| AtomicU8::new(state::ACQUIRING))
            .collect();

        let results: Vec<TaskResult<O::Task>> = if self.cfg.workers == 1 {
            batch
                .iter()
                .enumerate()
                .map(|(slot, t)| self.run_task(slot, t, &states))
                .collect()
        } else {
            self.run_parallel(&batch, &states)
        };

        let mut stats = RoundStats {
            m,
            launched,
            ..RoundStats::default()
        };
        for (slot, (task, result)) in batch.into_iter().zip(results).enumerate() {
            match result {
                TaskResult::Committed {
                    spawned,
                    acquires,
                    lockset,
                } => {
                    stats.committed += 1;
                    stats.spawned += spawned.len();
                    stats.lock_acquires += acquires;
                    ws.extend(spawned);
                    // Round barrier: committed locks are released only
                    // now that every task of the round has resolved.
                    crate::lock::release_all(self.space.owners(), slot, &lockset);
                }
                TaskResult::Aborted { acquires } => {
                    stats.aborted += 1;
                    stats.lock_acquires += acquires;
                    ws.push(task); // retry in a later round
                }
            }
        }
        debug_assert!(self.space.check_all_free().is_ok());
        stats
    }

    /// Drive the executor with a controller until the work-set drains
    /// (or `max_rounds` elapse).
    pub fn run_with_controller<C: Controller, R: Rng + ?Sized>(
        &self,
        ws: &mut WorkSet<O::Task>,
        ctl: &mut C,
        max_rounds: usize,
        rng: &mut R,
    ) -> RunStats {
        let mut run = RunStats::default();
        for _ in 0..max_rounds {
            if ws.is_empty() {
                break;
            }
            let m = ctl.current_m();
            let rs = self.run_round(ws, m, rng);
            ctl.observe(rs.conflict_ratio(), rs.launched);
            run.rounds.push(rs);
        }
        run
    }

    fn run_task(
        &self,
        slot: usize,
        task: &O::Task,
        states: &[AtomicU8],
    ) -> TaskResult<O::Task> {
        let mut cx = TaskCtx::new(slot, self.space, states, self.cfg.policy);
        match self.op.execute(task, &mut cx) {
            Ok(spawned) => {
                let acquires = cx.acquires;
                match cx.finish_commit() {
                    Some(lockset) => TaskResult::Committed {
                        spawned,
                        acquires,
                        lockset,
                    },
                    None => TaskResult::Aborted { acquires },
                }
            }
            Err(_abort) => {
                let acquires = cx.acquires;
                cx.finish_abort();
                TaskResult::Aborted { acquires }
            }
        }
    }

    fn run_parallel(
        &self,
        batch: &[O::Task],
        states: &[AtomicU8],
    ) -> Vec<TaskResult<O::Task>>
    where
        O::Task: Send,
    {
        let next = AtomicUsize::new(0);
        let workers = self.cfg.workers.min(batch.len());
        // Workers dynamically claim task indices with a shared counter
        // and collect (index, result) pairs locally; results are merged
        // after the scope joins — no shared mutable result array.
        let mut pairs: Vec<(usize, TaskResult<O::Task>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= batch.len() {
                                break;
                            }
                            local.push((i, self.run_task(i, &batch[i], states)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        pairs.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(pairs.len(), batch.len());
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SpecStore;
    use crate::task::Abort;
    use optpar_core::control::FixedController;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Toy operator: task `i` increments counter `i` and decrements its
    /// ring neighbour `i+1` — adjacent tasks conflict.
    struct RingOp<'s> {
        store: &'s SpecStore<i64>,
        n: usize,
    }

    impl Operator for RingOp<'_> {
        type Task = usize;

        fn execute(&self, &i: &usize, cx: &mut TaskCtx<'_>) -> Result<Vec<usize>, Abort> {
            let j = (i + 1) % self.n;
            *cx.write(self.store, i)? += 1;
            *cx.write(self.store, j)? -= 1;
            Ok(vec![])
        }
    }

    fn ring_setup(n: usize) -> (LockSpace, crate::lock::Region) {
        let mut b = LockSpace::builder();
        let r = b.region(n);
        (b.build(), r)
    }

    #[test]
    fn workset_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ws = WorkSet::from_vec((0..10).collect::<Vec<_>>());
        let batch = ws.sample_drain(4, &mut rng);
        assert_eq!(batch.len(), 4);
        assert_eq!(ws.len(), 6);
        let batch2 = ws.sample_drain(100, &mut rng);
        assert_eq!(batch2.len(), 6);
        assert!(ws.is_empty());
        let mut all: Vec<_> = batch.into_iter().chain(batch2).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_round_conserves_sum() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 16;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 1,
                policy: ConflictPolicy::FirstWins,
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut total_committed = 0;
        while !ws.is_empty() {
            let rs = ex.run_round(&mut ws, 8, &mut rng);
            assert_eq!(rs.launched, rs.committed + rs.aborted);
            total_committed += rs.committed;
        }
        assert_eq!(total_committed, n);
        // Increment/decrement pairs cancel.
        let mut store = store;
        let sum: i64 = store.snapshot().iter().sum();
        assert_eq!(sum, 0);
    }

    #[test]
    fn parallel_round_is_serializable() {
        // Under contention with many workers, committed effects must be
        // exactly "one +1 to i, one -1 to i+1" per committed task —
        // never a torn half-update.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 64;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 8,
                policy: ConflictPolicy::FirstWins,
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut committed = 0;
        let mut rounds = 0;
        while !ws.is_empty() && rounds < 10_000 {
            let rs = ex.run_round(&mut ws, 32, &mut rng);
            committed += rs.committed;
            rounds += 1;
        }
        assert_eq!(committed, n);
        let mut store = store;
        assert_eq!(store.snapshot().iter().sum::<i64>(), 0);
    }

    #[test]
    fn parallel_priority_policy_also_serializable() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 64;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 8,
                policy: ConflictPolicy::PriorityWins,
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut committed = 0;
        while !ws.is_empty() {
            let rs = ex.run_round(&mut ws, 32, &mut rng);
            committed += rs.committed;
        }
        assert_eq!(committed, n);
        let mut store = store;
        assert_eq!(store.snapshot().iter().sum::<i64>(), 0);
    }

    #[test]
    fn controller_drives_to_completion() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 128;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut ctl = FixedController::new(16);
        let run = ex.run_with_controller(&mut ws, &mut ctl, 10_000, &mut rng);
        assert_eq!(run.total_committed(), n);
        assert!(ws.is_empty());
        assert!(run.overall_conflict_ratio() < 1.0);
    }

    #[test]
    fn empty_round_reports_zero() {
        let (space, _r) = ring_setup(1);
        struct Nop;
        impl Operator for Nop {
            type Task = ();
            fn execute(&self, _: &(), _: &mut TaskCtx<'_>) -> Result<Vec<()>, Abort> {
                Ok(vec![])
            }
        }
        let op = Nop;
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws: WorkSet<()> = WorkSet::new();
        let mut rng = StdRng::seed_from_u64(6);
        let rs = ex.run_round(&mut ws, 10, &mut rng);
        assert_eq!(rs.launched, 0);
        assert_eq!(rs.conflict_ratio(), 0.0);
    }

    #[test]
    fn spawned_tasks_enter_workset() {
        // Operator that spawns one child (with a stop marker).
        struct Spawner<'s> {
            store: &'s SpecStore<u32>,
        }
        impl Operator for Spawner<'_> {
            type Task = (usize, bool);
            fn execute(
                &self,
                &(i, respawn): &(usize, bool),
                cx: &mut TaskCtx<'_>,
            ) -> Result<Vec<(usize, bool)>, Abort> {
                *cx.write(self.store, i)? += 1;
                Ok(if respawn { vec![(i, false)] } else { vec![] })
            }
        }
        let mut b = LockSpace::builder();
        let r = b.region(4);
        let space = b.build();
        let store = SpecStore::filled(r, 4, 0u32);
        let op = Spawner { store: &store };
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec(vec![(0, true), (1, true), (2, true), (3, true)]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut committed = 0;
        while !ws.is_empty() {
            committed += ex.run_round(&mut ws, 4, &mut rng).committed;
        }
        assert_eq!(committed, 8, "4 originals + 4 spawned");
        let mut store = store;
        assert_eq!(store.snapshot(), vec![2, 2, 2, 2]);
    }
}

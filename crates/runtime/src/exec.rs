//! The round-based speculative executor.
//!
//! Each round mirrors one temporal step of the paper's model:
//!
//! 1. Draw `m` tasks uniformly at random from the [`WorkSet`] (their
//!    draw order is the commit priority).
//! 2. Run them speculatively across `workers` OS threads; conflicts are
//!    detected by the abstract locks, losers roll back.
//! 3. Committed tasks leave the system and may spawn new tasks; aborted
//!    tasks return to the work-set for a later round.
//! 4. Report `(launched, aborted)` to the processor-allocation
//!    controller, which picks the next round's `m`.
//!
//! With `workers == 1` the executor runs tasks inline in priority
//! order, which makes it *bitwise deterministic* given the RNG seed —
//! the differential-testing anchor against the sequential model in
//! `optpar-core`.
//!
//! ## Round mechanics (the hot path)
//!
//! The executor owns a persistent [`WorkerPool`]: threads are created
//! once and parked between rounds, so a round costs one
//! wake/rendezvous, not `workers` thread spawns. Workers claim task
//! indices in contiguous chunks of `max(1, launched / (8 · workers))`
//! from a shared counter — one `fetch_add` per chunk instead of per
//! task — and write each outcome into a pre-indexed result slot, so
//! results come back in priority order with no post-round sort. The
//! per-task state array is a pool-owned scratch buffer reused across
//! rounds, and the round barrier itself is a single
//! [`LockSpace::advance_epoch`] bump: committed tasks' locks simply
//! expire with the epoch instead of being walked and released.
//!
//! [`Executor::run_round_scoped`] preserves the old
//! spawn-threads-every-round implementation as a baseline for
//! benchmarks and differential tests.

use crate::faults::{FaultCause, FaultLog, TaskFault};
use crate::lock::{state, ConflictPolicy, LockSpace};
use crate::phase::{self, Phase};
use crate::pool::WorkerPool;
use crate::probe::{obs_emit, Probe};
use crate::stats::{RoundStats, RunStats};
use crate::task::{Operator, TaskCtx};
use optpar_core::control::Controller;
use rand::Rng;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One pending task plus its retry bookkeeping.
#[derive(Clone, Debug)]
pub(crate) struct Entry<T> {
    /// The task itself.
    pub(crate) task: T,
    /// Rounds this task has aborted or faulted so far.
    pub(crate) retries: u32,
    /// Monotone enqueue stamp (kept across re-queues): among equally
    /// aged tasks, the oldest enqueue wins the front of the prefix,
    /// so aging degenerates to FIFO and no aged task can be overtaken
    /// forever.
    pub(crate) seq: u64,
}

/// The pending-task multiset (the paper's work-set).
///
/// Uniform random sampling without replacement is O(m) via partial
/// Fisher-Yates over the tail of the backing vector. Each task also
/// carries a retry counter (bumped by the executor on abort/fault)
/// feeding the starvation-avoidance aging in
/// [`Executor::run_round`].
#[derive(Clone, Debug, Default)]
pub struct WorkSet<T> {
    tasks: Vec<Entry<T>>,
    next_seq: u64,
}

impl<T> WorkSet<T> {
    /// An empty work-set.
    pub fn new() -> Self {
        WorkSet {
            tasks: Vec::new(),
            next_seq: 0,
        }
    }

    /// Wrap an existing task list.
    pub fn from_vec(tasks: Vec<T>) -> Self {
        let mut ws = WorkSet::new();
        ws.extend(tasks);
        ws
    }

    /// Add one task.
    pub fn push(&mut self, t: T) {
        self.push_with_retries(t, 0);
    }

    /// Add one task with a pre-set retry count (test/benchmark hook
    /// for exercising the aging path without replaying the aborts).
    pub fn push_with_retries(&mut self, t: T, retries: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tasks.push(Entry {
            task: t,
            retries,
            seq,
        });
    }

    /// Re-queue an entry, preserving its retry count and enqueue
    /// stamp.
    pub(crate) fn push_entry(&mut self, e: Entry<T>) {
        self.tasks.push(e);
    }

    /// Add many tasks.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, it: I) {
        for t in it {
            self.push(t);
        }
    }

    /// Pending task count.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Is the work-set drained?
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The largest retry count among pending tasks (0 when empty).
    pub fn max_retries(&self) -> u32 {
        self.tasks.iter().map(|e| e.retries).max().unwrap_or(0)
    }

    /// Core of the sampler: remove `min(m, len)` entries drawn
    /// uniformly at random, in draw (= commit-priority) order.
    ///
    /// O(m) regardless of the work-set size: the i-th draw swaps a
    /// uniform pick from the surviving prefix into position `n-1-i`,
    /// then the sampled tail is split off — no front-drain shifting
    /// the entire remainder.
    fn draw_entries<R: Rng + ?Sized>(&mut self, m: usize, rng: &mut R) -> Vec<Entry<T>> {
        let n = self.tasks.len();
        let m = m.min(n);
        for i in 0..m {
            let left = n - i;
            if left == 1 {
                // Final draw of a full drain: one survivor remains, so
                // the pick is forced (`swap(0, 0)`) — don't burn an RNG
                // word on it. Uniformity over all n! orders is
                // unchanged (see the chi-squared tests below).
                break;
            }
            let j = rng.random_range(0..left);
            self.tasks.swap(j, n - 1 - i);
        }
        let mut batch = self.tasks.split_off(n - m);
        // The tail holds draws in reverse draw order; restore priority
        // order (first draw = highest priority).
        batch.reverse();
        batch
    }

    /// Remove and return `min(m, len)` tasks drawn uniformly at random;
    /// the returned order is the commit-priority order. This public
    /// sampler is pure-uniform (no retry aging): the executor applies
    /// aging via [`WorkSet::sample_drain_aged`] so the distributional
    /// contract here — pinned by the chi-squared tests — never shifts.
    pub fn sample_drain<R: Rng + ?Sized>(&mut self, m: usize, rng: &mut R) -> Vec<T> {
        self.draw_entries(m, rng)
            .into_iter()
            .map(|e| e.task)
            .collect()
    }

    /// Draw like [`WorkSet::sample_drain`], then apply starvation
    /// avoidance: every drawn task with `retries >= budget` is moved
    /// (stably) to the front of the prefix, most-retried first, ties
    /// broken oldest-enqueue-first. The front of a round's prefix is
    /// greedy-MIS-winning by construction — under sequential
    /// execution it *always* commits — so an aged task commits within
    /// one drawn round. When no drawn task has crossed the budget the
    /// batch is bit-identical to the uniform draw (same RNG words,
    /// same order).
    pub(crate) fn sample_drain_aged<R: Rng + ?Sized>(
        &mut self,
        m: usize,
        rng: &mut R,
        budget: u32,
    ) -> Vec<Entry<T>> {
        let mut batch = self.draw_entries(m, rng);
        if budget != u32::MAX && batch.iter().any(|e| e.retries >= budget) {
            batch.sort_by_key(|e| {
                if e.retries >= budget {
                    (0u8, u32::MAX - e.retries, e.seq)
                } else {
                    // Equal keys: the stable sort preserves draw order
                    // for everything under budget.
                    (1u8, 0, 0)
                }
            });
        }
        batch
    }

    /// Move every pending entry out, retry/seq bookkeeping intact
    /// (the pipelined executor shards them across per-worker queues).
    pub(crate) fn take_entries(&mut self) -> Vec<Entry<T>> {
        std::mem::take(&mut self.tasks)
    }

    /// Absorb entries coming back from the pipelined shards, bumping
    /// `next_seq` past every absorbed stamp so later [`WorkSet::push`]
    /// calls never reuse a live seq.
    pub(crate) fn absorb_entries(&mut self, entries: Vec<Entry<T>>) {
        for e in entries {
            self.next_seq = self.next_seq.max(e.seq + 1);
            self.tasks.push(e);
        }
    }
}

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Worker threads. 1 = deterministic inline execution.
    pub workers: usize,
    /// Conflict arbitration policy.
    pub policy: ConflictPolicy,
    /// Abort-retry budget `K`: a task aborted/faulted at least this
    /// many times is aged to the front of the next drawn prefix,
    /// where the greedy commit rule guarantees it wins (starvation
    /// avoidance). `u32::MAX` disables aging.
    pub retry_budget: u32,
    /// Round watchdog threshold `T`: after this many consecutive
    /// zero-commit (but non-empty) rounds,
    /// [`Executor::run_with_controller`] overrides the controller and
    /// halves `m` each further stalled round, down to `m = 1` where
    /// Prop. 1 gives `r̄(1) = 0` and forward progress. `u32::MAX`
    /// disables the watchdog.
    pub watchdog_stall: u32,
    /// Dead-letter budget `K`: a task that *faults* (not merely
    /// aborts) while already at `retries ≥ K` is retired to the
    /// executor's dead-letter list ([`Executor::take_dead_letters`])
    /// instead of being re-queued — an always-faulting task launches
    /// at most `K + 1` times. `u32::MAX` disables retirement
    /// (faults re-queue forever, the pre-service behavior). Conflict
    /// aborts are never dead-lettered: aging guarantees they commit.
    pub dead_letter_budget: u32,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            policy: ConflictPolicy::FirstWins,
            retry_budget: 8,
            watchdog_stall: 4,
            dead_letter_budget: u32::MAX,
        }
    }
}

/// How an executor reaches its worker threads: none (inline), an
/// owned pool (the classic standalone construction), or a borrowed
/// pool shared with other executors (the job-service construction,
/// where one persistent pool outlives many short-lived executors).
enum PoolHandle<'a> {
    /// `workers == 1`: inline execution, no threads at all.
    Inline,
    /// Pool created by and torn down with this executor.
    Owned(WorkerPool),
    /// Pool borrowed from a longer-lived owner (e.g. `JobService`);
    /// dropping the executor leaves it running.
    Shared(&'a WorkerPool),
}

impl PoolHandle<'_> {
    fn get(&self) -> Option<&WorkerPool> {
        match self {
            PoolHandle::Inline => None,
            PoolHandle::Owned(p) => Some(p),
            PoolHandle::Shared(p) => Some(p),
        }
    }
}

/// The speculative executor: pairs an [`Operator`] with a
/// [`LockSpace`].
pub struct Executor<'a, O: Operator> {
    op: &'a O,
    space: &'a LockSpace,
    cfg: ExecutorConfig,
    /// Persistent parked threads; inline when `workers == 1`, owned or
    /// borrowed otherwise.
    pool: PoolHandle<'a>,
    /// Per-task speculation states, reused across rounds (grown on
    /// demand, reset per round). Behind a mutex so `run_round` can
    /// take `&self`; rounds on one executor are serialized anyway.
    scratch: Mutex<Vec<AtomicU8>>,
    /// Structured record of every contained fault (operator panics,
    /// injected faults, poisoned mutexes, lost result slots).
    faults: Mutex<FaultLog>,
    /// Tasks retired past [`ExecutorConfig::dead_letter_budget`],
    /// awaiting [`Executor::take_dead_letters`].
    dead_letters: Mutex<Vec<crate::faults::DeadLetter>>,
    /// Deterministic fault-injection plan (feature `faults`).
    #[cfg(feature = "faults")]
    fault_plan: Option<&'a crate::faults::FaultPlan>,
    /// Optional per-phase time accounting (draw / execute / commit /
    /// wait), stamped at round or batch granularity — never per task.
    phases: Option<&'a crate::phase::PhaseClock>,
    /// Attached observability recorder (feature `obs`): per-worker
    /// event rings drained at the round barrier.
    #[cfg(feature = "obs")]
    recorder: Option<optpar_obs::Recorder>,
}

impl<O: Operator> std::fmt::Debug for Executor<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.cfg.workers)
            .field("policy", &self.cfg.policy)
            .field("pooled", &self.pool.get().is_some())
            .finish_non_exhaustive()
    }
}

/// Outcome of one task within a round. Committed tasks' locks are not
/// carried here: they stay stamped in the lock space until the round's
/// epoch bump expires them wholesale.
enum TaskResult<T> {
    Committed {
        spawned: Vec<T>,
        acquires: usize,
    },
    Aborted {
        acquires: usize,
    },
    /// The task faulted (contained panic, injected fault, or lost
    /// result slot): rolled back and re-queued like an abort, but
    /// booked separately and logged. Boxed so the rare fault arm does
    /// not inflate every result slot on the fault-free path.
    Faulted {
        fault: Box<TaskFault>,
        acquires: usize,
    },
}

/// One pre-indexed result cell. Each cell is written by exactly one
/// worker (the one that claimed its index) and read only after the
/// pool rendezvous, so the unsynchronized interior access is disjoint
/// in time and space.
struct ResultSlot<T>(UnsafeCell<Option<TaskResult<T>>>);

// SAFETY: see `ResultSlot` — disjoint single-writer cells, read only
// after the pool rendezvous (which synchronizes via its mutex).
unsafe impl<T: Send> Sync for ResultSlot<T> {}

impl<'a, O: Operator> Executor<'a, O> {
    /// Pair an operator with its lock space under the given config.
    /// Spawns the persistent worker pool when `workers > 1`.
    pub fn new(op: &'a O, space: &'a LockSpace, cfg: ExecutorConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        let pool = if cfg.workers > 1 {
            PoolHandle::Owned(WorkerPool::new(cfg.workers))
        } else {
            PoolHandle::Inline
        };
        Self::with_handle(op, space, cfg, pool)
    }

    /// Pair an operator with its lock space, executing on a *borrowed*
    /// pool instead of spawning one. `cfg.workers` is overridden by
    /// the pool's thread count; dropping the executor leaves the pool
    /// running, so many short-lived executors (one per job, per
    /// round) can time-slice one persistent pool.
    pub fn with_pool(
        op: &'a O,
        space: &'a LockSpace,
        mut cfg: ExecutorConfig,
        pool: &'a WorkerPool,
    ) -> Self {
        cfg.workers = pool.workers();
        Self::with_handle(op, space, cfg, PoolHandle::Shared(pool))
    }

    fn with_handle(
        op: &'a O,
        space: &'a LockSpace,
        cfg: ExecutorConfig,
        pool: PoolHandle<'a>,
    ) -> Self {
        Executor {
            op,
            space,
            cfg,
            pool,
            scratch: Mutex::new(Vec::new()),
            faults: Mutex::new(FaultLog::default()),
            dead_letters: Mutex::new(Vec::new()),
            #[cfg(feature = "faults")]
            fault_plan: None,
            phases: None,
            #[cfg(feature = "obs")]
            recorder: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.cfg
    }

    /// Install a deterministic fault-injection plan: every subsequent
    /// round consults it per launched task (and per round, for
    /// scratch poisoning).
    #[cfg(feature = "faults")]
    pub fn set_fault_plan(&mut self, plan: &'a crate::faults::FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Total faults contained since construction (monotone; surviving
    /// a drain of [`Executor::take_faults`]).
    pub fn fault_count(&self) -> usize {
        crate::faults::recover(self.faults.lock()).total()
    }

    /// Drain and return the structured fault log.
    pub fn take_faults(&self) -> Vec<TaskFault> {
        crate::faults::recover(self.faults.lock()).drain()
    }

    /// Faults dropped by the bounded log because its undrained buffer
    /// was full (monotone; see [`FaultLog::dropped`]).
    pub fn dropped_faults(&self) -> usize {
        crate::faults::recover(self.faults.lock()).dropped()
    }

    /// Replace the fault log with an empty one bounded at `cap`
    /// undrained entries (long-running services drain rarely; the
    /// default [`crate::faults::DEFAULT_FAULT_LOG_CAP`] applies
    /// otherwise). Any undrained entries are returned.
    pub fn set_fault_log_capacity(&self, cap: usize) -> Vec<TaskFault> {
        let mut log = crate::faults::recover(self.faults.lock());
        let old = log.drain();
        *log = FaultLog::with_capacity(cap);
        old
    }

    /// Drain and return the dead-letter list: tasks that faulted past
    /// [`ExecutorConfig::dead_letter_budget`] and were retired from
    /// the work-set instead of re-queued.
    pub fn take_dead_letters(&self) -> Vec<crate::faults::DeadLetter> {
        std::mem::take(&mut *crate::faults::recover(self.dead_letters.lock()))
    }

    /// Record one contained fault.
    pub(crate) fn log_fault(&self, fault: TaskFault) {
        crate::faults::recover(self.faults.lock()).push(fault);
    }

    /// Retire one task to the dead-letter list (shared by the round
    /// and pipelined executors).
    pub(crate) fn push_dead_letter(&self, letter: crate::faults::DeadLetter) {
        crate::faults::recover(self.dead_letters.lock()).push(letter);
    }

    /// Worker threads still alive in the pool (`None` for inline
    /// execution, which has no threads). Panic containment keeps this
    /// at `workers` even under injected panics.
    pub fn live_workers(&self) -> Option<usize> {
        self.pool.get().map(WorkerPool::live_workers)
    }

    /// Worker-level job panics that escaped the per-task containment
    /// (should stay 0: operator panics are caught inside the round).
    pub fn worker_panics(&self) -> u64 {
        self.pool.get().map_or(0, WorkerPool::job_panics)
    }

    /// The lock space this executor arbitrates over.
    pub(crate) fn space(&self) -> &'a LockSpace {
        self.space
    }

    /// The operator being executed.
    pub(crate) fn op(&self) -> &'a O {
        self.op
    }

    /// The persistent worker pool (`None` when `workers == 1`).
    pub(crate) fn pool(&self) -> Option<&WorkerPool> {
        self.pool.get()
    }

    /// The installed fault-injection plan, if any.
    #[cfg(feature = "faults")]
    pub(crate) fn fault_plan(&self) -> Option<&'a crate::faults::FaultPlan> {
        self.fault_plan
    }

    /// Attach a phase clock: subsequent runs charge their draw /
    /// execute / commit / wait time to it. Stamps are taken at round
    /// (or batch) granularity, so the per-task hot path stays
    /// timer-free.
    pub fn set_phase_clock(&mut self, clock: &'a crate::phase::PhaseClock) {
        self.phases = Some(clock);
    }

    /// The attached phase clock, if any.
    pub(crate) fn phases(&self) -> Option<&'a crate::phase::PhaseClock> {
        self.phases
    }

    /// Attach an observability recorder sized for this executor's
    /// worker count. Subsequent rounds record events into per-worker
    /// rings and drain them at the barrier.
    #[cfg(feature = "obs")]
    pub fn enable_obs(&mut self, cfg: optpar_obs::ObsConfig) {
        self.recorder = Some(optpar_obs::Recorder::new(self.cfg.workers, cfg));
    }

    /// The attached recorder, if any (snapshot/take its [`EventLog`]
    /// from here).
    ///
    /// [`EventLog`]: optpar_obs::EventLog
    #[cfg(feature = "obs")]
    pub fn recorder(&self) -> Option<&optpar_obs::Recorder> {
        self.recorder.as_ref()
    }

    /// Worker `w`'s event-ring probe.
    #[cfg(feature = "obs")]
    pub(crate) fn probe_for(&self, w: usize) -> Probe<'_> {
        self.recorder.as_ref().and_then(|r| r.ring(w))
    }

    /// Worker `w`'s event-ring probe (zero-sized no-op without `obs`).
    #[cfg(not(feature = "obs"))]
    pub(crate) fn probe_for(&self, _w: usize) -> Probe<'_> {
        crate::probe::no_probe()
    }

    /// Round prologue on the controller track: `RoundBegin` plus one
    /// `RetryAged` per drawn task that crossed the retry budget (they
    /// lead the prefix by the aging rule).
    #[cfg(feature = "obs")]
    fn obs_round_begin(&self, m: usize, batch: &[Entry<O::Task>]) {
        if let Some(rec) = self.recorder.as_ref() {
            rec.round_begin(self.space.epoch(), m as u64);
            if self.cfg.retry_budget != u32::MAX {
                for (slot, e) in batch.iter().enumerate() {
                    if e.retries >= self.cfg.retry_budget {
                        rec.retry_aged(slot as u32, e.retries);
                    }
                }
            }
        }
    }

    /// Run one round launching up to `m` tasks from `ws`.
    ///
    /// Tasks whose retry count has reached
    /// [`ExecutorConfig::retry_budget`] are aged to the front of the
    /// drawn prefix (greedy-MIS-winning by construction), so no task
    /// starves under an adversarial conflict pattern.
    pub fn run_round<R: Rng + ?Sized>(
        &self,
        ws: &mut WorkSet<O::Task>,
        m: usize,
        rng: &mut R,
    ) -> RoundStats {
        #[cfg(feature = "faults")]
        if let Some(plan) = self.fault_plan {
            if plan.take_scratch_poison(self.space.epoch()) {
                // Poison the scratch mutex by panicking while holding
                // its guard; the catch keeps the unwind out of this
                // round, which must then recover below.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let _guard = self.scratch.lock();
                    std::panic::panic_any(crate::faults::InjectedPanic(
                        "injected scratch-mutex poison".to_string(),
                    ));
                }));
            }
        }
        let t_draw = phase::maybe_start(self.phases);
        let batch = ws.sample_drain_aged(m, rng, self.cfg.retry_budget);
        phase::maybe_add(self.phases, Phase::Draw, t_draw);
        let launched = batch.len();
        #[cfg(feature = "obs")]
        self.obs_round_begin(m, &batch);
        if launched == 0 {
            // Keep the trace's round segments 1:1 with RoundStats even
            // for the degenerate empty round (which bumps no epoch).
            #[cfg(feature = "obs")]
            if let Some(rec) = self.recorder.as_ref() {
                rec.round_end(
                    self.space.epoch(),
                    m as u64,
                    optpar_obs::RoundTotals::default(),
                    0,
                );
            }
            return RoundStats {
                m,
                ..RoundStats::default()
            };
        }
        // Slot indices must fit the 32-bit owner field of a lock word.
        assert!(launched < u32::MAX as usize, "round too large");
        let mut scratch = match self.scratch.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                // Poisoned: a panic escaped while the guard was held.
                // The buffer is rewritten below before any use, so the
                // data is consistent; log the fault, clear the flag so
                // later rounds lock cleanly, and continue.
                self.scratch.clear_poison();
                self.log_fault(TaskFault {
                    epoch: self.space.epoch(),
                    slot: None,
                    cause: FaultCause::PoisonedScratch,
                    detail: "scratch mutex poisoned; recovered and reset".to_string(),
                });
                poisoned.into_inner()
            }
        };
        if scratch.len() < launched {
            scratch.resize_with(launched, || AtomicU8::new(state::ACQUIRING));
        }
        // The pool rendezvous (mutex + condvar) already orders these
        // resets before any worker's first load; Release keeps the
        // file inside the workspace's audited-ordering discipline
        // (Relaxed is reserved for lock.rs/pool.rs) at no measurable
        // cost on a store that runs once per task per round.
        for s in &scratch[..launched] {
            s.store(state::ACQUIRING, Ordering::Release);
        }
        let states = &scratch[..launched];

        // Inline rounds realize the paper's greedy commit rule exactly,
        // so the commit-set oracle applies on top of the race analysis.
        #[cfg(feature = "checker")]
        self.space.audit().arm(self.cfg.workers == 1);

        let results: Vec<TaskResult<O::Task>> = match self.pool.get() {
            // BLOCKING-OK: `scratch` is the per-slot state-machine arena the
            // workers themselves spin on; holding it across the pool
            // rendezvous is the design (workers access the cells lock-free
            // via the `states` borrow), and no other thread ever takes
            // `scratch` while a round is in flight.
            Some(pool) if self.cfg.workers > 1 => self.run_parallel(pool, &batch, states),
            _ => {
                let t_exec = phase::maybe_start(self.phases);
                let out = batch
                    .iter()
                    .enumerate()
                    .map(|(slot, e)| self.run_task(slot, &e.task, states, self.probe_for(0)))
                    .collect();
                phase::maybe_add(self.phases, Phase::Execute, t_exec);
                out
            }
        };
        drop(scratch);

        self.merge_round(ws, m, batch, results)
    }

    /// Baseline round implementation that spawns fresh scoped threads
    /// every round (per-task work claiming, post-round sort). Kept as
    /// the comparison point for the `throughput` benchmark and for
    /// differential tests against the pooled path; semantics are
    /// identical to [`Self::run_round`].
    pub fn run_round_scoped<R: Rng + ?Sized>(
        &self,
        ws: &mut WorkSet<O::Task>,
        m: usize,
        rng: &mut R,
    ) -> RoundStats {
        let t_draw = phase::maybe_start(self.phases);
        let batch = ws.sample_drain_aged(m, rng, self.cfg.retry_budget);
        phase::maybe_add(self.phases, Phase::Draw, t_draw);
        let launched = batch.len();
        #[cfg(feature = "obs")]
        self.obs_round_begin(m, &batch);
        if launched == 0 {
            #[cfg(feature = "obs")]
            if let Some(rec) = self.recorder.as_ref() {
                rec.round_end(
                    self.space.epoch(),
                    m as u64,
                    optpar_obs::RoundTotals::default(),
                    0,
                );
            }
            return RoundStats {
                m,
                ..RoundStats::default()
            };
        }
        assert!(launched < u32::MAX as usize, "round too large");
        let states: Vec<AtomicU8> = (0..launched)
            .map(|_| AtomicU8::new(state::ACQUIRING))
            .collect();

        #[cfg(feature = "checker")]
        self.space.audit().arm(self.cfg.workers == 1);

        let results: Vec<TaskResult<O::Task>> = if self.cfg.workers == 1 {
            let t_exec = phase::maybe_start(self.phases);
            let out = batch
                .iter()
                .enumerate()
                .map(|(slot, e)| self.run_task(slot, &e.task, &states, self.probe_for(0)))
                .collect();
            phase::maybe_add(self.phases, Phase::Execute, t_exec);
            out
        } else {
            let next = AtomicUsize::new(0);
            let workers = self.cfg.workers.min(launched);
            let batch_ref = &batch;
            let states = &states;
            let pc = self.phases;
            let exec_before = pc.map(|c| c.snapshot().execute_ns);
            let t_wall = phase::maybe_start(pc);
            let mut filled: Vec<Option<TaskResult<O::Task>>> = Vec::new();
            filled.resize_with(launched, || None);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let next = &next;
                        let probe = self.probe_for(w);
                        s.spawn(move || {
                            let t_busy = phase::maybe_start(pc);
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::AcqRel);
                                if i >= batch_ref.len() {
                                    break;
                                }
                                local
                                    .push((i, self.run_task(i, &batch_ref[i].task, states, probe)));
                            }
                            phase::maybe_add(pc, Phase::Execute, t_busy);
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    // Operator panics are contained inside run_task, so
                    // a join error means the runtime itself panicked on
                    // that worker. Swallow the loss; the worker's
                    // claimed slots fault below instead of tearing the
                    // round down.
                    if let Ok(local) = h.join() {
                        for (i, r) in local {
                            filled[i] = Some(r);
                        }
                    }
                }
            });
            // Wait = worker-seconds the dispatch held that nobody
            // spent executing (stragglers at the implicit join).
            if let (Some(c), Some(before)) = (pc, exec_before) {
                let wall = t_wall.map_or(0, phase::span_ns);
                let busy = c.snapshot().execute_ns.saturating_sub(before);
                c.add_ns(Phase::Wait, (workers as u64 * wall).saturating_sub(busy));
            }
            filled
                .into_iter()
                .enumerate()
                .map(|(slot, r)| r.unwrap_or_else(|| self.missing_result(slot)))
                .collect()
        };

        self.merge_round(ws, m, batch, results)
    }

    /// Fold one round's results back into the work-set and stats, then
    /// perform the round barrier (one epoch bump — committed tasks'
    /// locks expire without being traversed).
    fn merge_round(
        &self,
        ws: &mut WorkSet<O::Task>,
        m: usize,
        batch: Vec<Entry<O::Task>>,
        results: Vec<TaskResult<O::Task>>,
    ) -> RoundStats {
        let t_commit = phase::maybe_start(self.phases);
        let mut stats = RoundStats {
            m,
            launched: batch.len(),
            ..RoundStats::default()
        };
        for (entry, result) in batch.into_iter().zip(results) {
            match result {
                TaskResult::Committed { spawned, acquires } => {
                    stats.committed += 1;
                    stats.spawned += spawned.len();
                    stats.lock_acquires += acquires;
                    ws.extend(spawned);
                }
                TaskResult::Aborted { acquires } => {
                    stats.aborted += 1;
                    stats.lock_acquires += acquires;
                    // Retry in a later round, one step closer to the
                    // aging threshold.
                    ws.push_entry(Entry {
                        retries: entry.retries.saturating_add(1),
                        ..entry
                    });
                }
                TaskResult::Faulted { fault, acquires } => {
                    stats.faulted += 1;
                    stats.lock_acquires += acquires;
                    if entry.retries >= self.cfg.dead_letter_budget {
                        // Faulting again at retries ≥ K: retire the
                        // task instead of re-queuing it forever. An
                        // always-faulting task therefore launches at
                        // most K + 1 times.
                        stats.dead_lettered += 1;
                        crate::faults::recover(self.dead_letters.lock()).push(
                            crate::faults::DeadLetter {
                                epoch: fault.epoch,
                                slot: fault.slot,
                                retries: entry.retries,
                                cause: fault.cause.clone(),
                                detail: fault.detail.clone(),
                            },
                        );
                    } else {
                        ws.push_entry(Entry {
                            retries: entry.retries.saturating_add(1),
                            ..entry
                        });
                    }
                    self.log_fault(*fault);
                }
            }
        }
        // Audit the finished round's traces before the epoch bump (the
        // traces carry the pre-bump epoch).
        #[cfg(all(feature = "checker", feature = "obs"))]
        let audit_before = self.space.audit().report_count();
        #[cfg(feature = "checker")]
        self.space.audit().drain_round();
        // Round barrier from the trace's point of view: drain every
        // worker ring, stamp audit findings and the round totals, then
        // record the epoch bump the barrier performs.
        #[cfg(feature = "obs")]
        let pre_epoch = self.space.epoch();
        #[cfg(feature = "obs")]
        if let Some(rec) = self.recorder.as_ref() {
            #[cfg(feature = "checker")]
            let findings = (self
                .space
                .audit()
                .report_count()
                .saturating_sub(audit_before)) as u64;
            #[cfg(not(feature = "checker"))]
            let findings = 0u64;
            rec.round_end(
                pre_epoch,
                m as u64,
                optpar_obs::RoundTotals {
                    launched: stats.launched as u32,
                    committed: stats.committed as u32,
                    aborted: stats.aborted as u32,
                    faulted: stats.faulted as u32,
                    spawned: stats.spawned as u32,
                },
                findings,
            );
        }
        self.space.advance_epoch();
        #[cfg(feature = "obs")]
        if let Some(rec) = self.recorder.as_ref() {
            rec.epoch_bump(pre_epoch, self.space.epoch());
        }
        debug_assert!(self.space.check_all_free().is_ok());
        // Commit covers the merge plus the barrier's serial
        // bookkeeping (audit drain, ring drain, epoch bump).
        phase::maybe_add(self.phases, Phase::Commit, t_commit);
        stats
    }

    /// Drive the executor with a controller until the work-set drains
    /// (or `max_rounds` elapse).
    ///
    /// The controller observes [`RoundStats::pressure_ratio`] —
    /// aborts *plus* faults over launched — so a fault storm shrinks
    /// `m` exactly like a conflict storm (identical to the old
    /// conflict-ratio feed when nothing faults). Independently, a
    /// round watchdog counts consecutive zero-commit rounds; past
    /// [`ExecutorConfig::watchdog_stall`] it overrides the controller
    /// and halves `m` each further stalled round down to 1, where
    /// Prop. 1 (`r̄(1) = 0`) guarantees the head task commits and
    /// progress resumes.
    pub fn run_with_controller<C: Controller, R: Rng + ?Sized>(
        &self,
        ws: &mut WorkSet<O::Task>,
        ctl: &mut C,
        max_rounds: usize,
        rng: &mut R,
    ) -> RunStats {
        let mut run = RunStats::default();
        let mut stalled: u32 = 0;
        for _ in 0..max_rounds {
            if ws.is_empty() {
                break;
            }
            let mut m = ctl.current_m();
            if stalled >= self.cfg.watchdog_stall {
                let excess = (stalled - self.cfg.watchdog_stall)
                    .saturating_add(1)
                    .min(63);
                m = (m >> excess).max(1);
            }
            let rs = self.run_round(ws, m, rng);
            stalled = if rs.launched > 0 && rs.committed == 0 {
                stalled.saturating_add(1)
            } else {
                0
            };
            ctl.observe(rs.pressure_ratio(), rs.launched);
            #[cfg(feature = "obs")]
            if let Some(rec) = self.recorder.as_ref() {
                rec.controller(
                    ctl.current_m() as u64,
                    rs.pressure_ratio(),
                    ctl.target_rho(),
                );
            }
            run.rounds.push(rs);
        }
        run
    }

    /// Run one task to completion under panic containment.
    ///
    /// The operator call is wrapped in `catch_unwind`: a panicking
    /// operator (or a fired injected panic) is converted into a
    /// structured [`TaskResult::Faulted`] — its undo log is replayed
    /// and its locks released exactly like an abort, the worker thread
    /// survives, and the round continues. The rollback is always sound
    /// because `TaskCtx` snapshots a slot *before* handing out the
    /// `&mut`, so the undo log is complete at every possible unwind
    /// point.
    fn run_task(
        &self,
        slot: usize,
        task: &O::Task,
        states: &[AtomicU8],
        probe: Probe<'_>,
    ) -> TaskResult<O::Task> {
        obs_emit!(
            probe,
            optpar_obs::EventKind::TaskLaunch {
                slot: slot as u32,
                epoch: self.space.epoch(),
            }
        );
        let mut cx = TaskCtx::new(slot, self.space, states, self.cfg.policy);
        #[cfg(feature = "checker")]
        cx.note_seed(self.op.conflict_seed(task));
        cx.attach_probe(probe);
        #[cfg(feature = "faults")]
        if let Some(plan) = self.fault_plan {
            cx.arm_fault(plan, self.space.epoch());
        }
        match catch_unwind(AssertUnwindSafe(|| self.op.execute(task, &mut cx))) {
            Ok(Ok(spawned)) => {
                let acquires = cx.acquires;
                match cx.finish_commit() {
                    // The committed lockset stays stamped in the lock
                    // space; the round's epoch bump will expire it.
                    Some(_lockset) => {
                        obs_emit!(
                            probe,
                            optpar_obs::EventKind::TaskCommit {
                                slot: slot as u32,
                                acquires: acquires as u32,
                                spawned: spawned.len() as u32,
                            }
                        );
                        TaskResult::Committed { spawned, acquires }
                    }
                    None => {
                        obs_emit!(
                            probe,
                            optpar_obs::EventKind::TaskAbort {
                                slot: slot as u32,
                                acquires: acquires as u32,
                            }
                        );
                        TaskResult::Aborted { acquires }
                    }
                }
            }
            Ok(Err(abort)) => {
                #[cfg(feature = "checker")]
                {
                    if matches!(abort, crate::task::Abort::Requested) {
                        cx.note_requested_abort();
                    }
                    if matches!(abort, crate::task::Abort::Fault) {
                        cx.note_fault();
                    }
                }
                let acquires = cx.acquires;
                let faulted = matches!(abort, crate::task::Abort::Fault);
                cx.finish_abort();
                if faulted {
                    obs_emit!(
                        probe,
                        optpar_obs::EventKind::TaskFault {
                            slot: slot as u32,
                            cause: FaultCause::Injected.code(),
                        }
                    );
                    TaskResult::Faulted {
                        fault: Box::new(TaskFault {
                            epoch: self.space.epoch(),
                            slot: Some(slot),
                            cause: FaultCause::Injected,
                            detail: "injected spurious abort".to_string(),
                        }),
                        acquires,
                    }
                } else {
                    obs_emit!(
                        probe,
                        optpar_obs::EventKind::TaskAbort {
                            slot: slot as u32,
                            acquires: acquires as u32,
                        }
                    );
                    TaskResult::Aborted { acquires }
                }
            }
            Err(payload) => {
                // The operator panicked (or an injected panic fired).
                // Contain it: roll back, release locks, keep the worker.
                #[cfg(feature = "checker")]
                cx.note_fault();
                let acquires = cx.acquires;
                cx.finish_abort();
                let (cause, detail) = crate::faults::classify_panic(payload.as_ref());
                obs_emit!(
                    probe,
                    optpar_obs::EventKind::TaskFault {
                        slot: slot as u32,
                        cause: cause.code(),
                    }
                );
                TaskResult::Faulted {
                    fault: Box::new(TaskFault {
                        epoch: self.space.epoch(),
                        slot: Some(slot),
                        cause,
                        detail,
                    }),
                    acquires,
                }
            }
        }
    }

    /// Fault record for a result slot no worker wrote: the claiming
    /// worker died between claiming the index and storing the outcome
    /// (a runtime-level panic — operator panics never get this far).
    /// The slot's locks expire at the round's epoch bump, so booking
    /// it as a fault and re-queuing keeps the round accounting exact
    /// (`launched = committed + aborted + faulted`) instead of tearing
    /// the round down.
    fn missing_result(&self, slot: usize) -> TaskResult<O::Task> {
        TaskResult::Faulted {
            fault: Box::new(TaskFault {
                epoch: self.space.epoch(),
                slot: Some(slot),
                cause: FaultCause::MissingResult,
                detail: "worker lost before writing its result slot".to_string(),
            }),
            acquires: 0,
        }
    }

    /// Dispatch one round onto the persistent pool: chunked index
    /// claiming, results into pre-indexed slots (no sort).
    fn run_parallel(
        &self,
        pool: &WorkerPool,
        batch: &[Entry<O::Task>],
        states: &[AtomicU8],
    ) -> Vec<TaskResult<O::Task>> {
        let n = batch.len();
        // Chunked claiming: ~8 chunks per worker balances the tail
        // (large final chunks straggle) against counter contention
        // (per-task fetch_add).
        let chunk = (n / (8 * self.cfg.workers)).max(1);
        let next = AtomicUsize::new(0);
        let slots: Vec<ResultSlot<O::Task>> =
            (0..n).map(|_| ResultSlot(UnsafeCell::new(None))).collect();
        let pc = self.phases;
        let job = |w: usize| {
            let t_busy = phase::maybe_start(pc);
            let probe = self.probe_for(w);
            loop {
                let start = next.fetch_add(chunk, Ordering::AcqRel);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    let r = self.run_task(i, &batch[i].task, states, probe);
                    // SAFETY: index `i` belongs to exactly one claimed
                    // chunk, so this cell has a single writer; readers
                    // wait for the rendezvous below.
                    unsafe { *slots[i].0.get() = Some(r) };
                }
            }
            phase::maybe_add(pc, Phase::Execute, t_busy);
        };
        let exec_before = pc.map(|c| c.snapshot().execute_ns);
        let t_wall = phase::maybe_start(pc);
        if pool.run(&job).is_err() {
            // The pool was retired under us (the service supervisor
            // swaps pools when detaching a wedged job, and a round can
            // hold the old Arc across that swap). Nothing ran on the
            // pool, so drain the whole batch inline through the same
            // chunk-claiming closure; the caller picks up the
            // replacement pool on its next round.
            job(0);
        }
        // Wait = worker-seconds the rendezvous held that nobody spent
        // executing (the barrier's straggler cost).
        if let (Some(c), Some(before)) = (pc, exec_before) {
            let wall = t_wall.map_or(0, phase::span_ns);
            let busy = c.snapshot().execute_ns.saturating_sub(before);
            c.add_ns(
                Phase::Wait,
                (self.cfg.workers as u64 * wall).saturating_sub(busy),
            );
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(slot, s)| {
                s.0.into_inner()
                    .unwrap_or_else(|| self.missing_result(slot))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SpecStore;
    use crate::task::Abort;
    use optpar_core::control::FixedController;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Toy operator: task `i` increments counter `i` and decrements its
    /// ring neighbour `i+1` — adjacent tasks conflict.
    struct RingOp<'s> {
        store: &'s SpecStore<i64>,
        n: usize,
    }

    impl Operator for RingOp<'_> {
        type Task = usize;

        fn execute(&self, &i: &usize, cx: &mut TaskCtx<'_>) -> Result<Vec<usize>, Abort> {
            let j = (i + 1) % self.n;
            *cx.write(self.store, i)? += 1;
            *cx.write(self.store, j)? -= 1;
            Ok(vec![])
        }
    }

    fn ring_setup(n: usize) -> (LockSpace, crate::lock::Region) {
        let mut b = LockSpace::builder();
        let r = b.region(n);
        (b.build(), r)
    }

    #[test]
    fn workset_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ws = WorkSet::from_vec((0..10).collect::<Vec<_>>());
        let batch = ws.sample_drain(4, &mut rng);
        assert_eq!(batch.len(), 4);
        assert_eq!(ws.len(), 6);
        let batch2 = ws.sample_drain(100, &mut rng);
        assert_eq!(batch2.len(), 6);
        assert!(ws.is_empty());
        let mut all: Vec<_> = batch.into_iter().chain(batch2).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn workset_sampling_is_uniform() {
        // Chi-squared-style sanity check on the tail-sampling rewrite:
        // over many draws of 1-of-8, every element must appear with
        // frequency close to 1/8.
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 16_000;
        let mut hits = [0usize; 8];
        for _ in 0..trials {
            let mut ws = WorkSet::from_vec((0..8usize).collect::<Vec<_>>());
            let batch = ws.sample_drain(1, &mut rng);
            hits[batch[0]] += 1;
        }
        let expect = trials / 8;
        for (v, &h) in hits.iter().enumerate() {
            assert!(
                (h as i64 - expect as i64).abs() < (expect / 5) as i64,
                "element {v} drawn {h} times, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn phase_clock_accumulates_round_phases() {
        let mut rng = StdRng::seed_from_u64(33);
        let n = 128;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let clock = crate::phase::PhaseClock::new();
        let mut ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 2,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        ex.set_phase_clock(&clock);
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        while !ws.is_empty() {
            let _ = ex.run_round(&mut ws, 16, &mut rng);
        }
        let b = clock.snapshot();
        assert!(b.draw_ns > 0, "draw was timed");
        assert!(b.execute_ns > 0, "execute was timed");
        assert!(b.commit_ns > 0, "commit was timed");
        // `wait_ns` is derived (workers·wall − busy) and can
        // legitimately be ~0 on an idle machine, so no bound on it.
        assert_eq!(
            b.total_ns(),
            b.draw_ns + b.execute_ns + b.commit_ns + b.wait_ns
        );
    }

    #[test]
    fn sequential_round_conserves_sum() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 16;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 1,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut total_committed = 0;
        while !ws.is_empty() {
            let rs = ex.run_round(&mut ws, 8, &mut rng);
            assert_eq!(rs.launched, rs.committed + rs.aborted);
            total_committed += rs.committed;
        }
        assert_eq!(total_committed, n);
        // Increment/decrement pairs cancel.
        let mut store = store;
        let sum: i64 = store.snapshot().iter().sum();
        assert_eq!(sum, 0);
    }

    #[test]
    fn parallel_round_is_serializable() {
        // Under contention with many workers, committed effects must be
        // exactly "one +1 to i, one -1 to i+1" per committed task —
        // never a torn half-update.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 64;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 8,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut committed = 0;
        let mut rounds = 0;
        while !ws.is_empty() && rounds < 10_000 {
            let rs = ex.run_round(&mut ws, 32, &mut rng);
            committed += rs.committed;
            rounds += 1;
        }
        assert_eq!(committed, n);
        let mut store = store;
        assert_eq!(store.snapshot().iter().sum::<i64>(), 0);
    }

    #[test]
    fn parallel_priority_policy_also_serializable() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 64;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 8,
                policy: ConflictPolicy::PriorityWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut committed = 0;
        while !ws.is_empty() {
            let rs = ex.run_round(&mut ws, 32, &mut rng);
            committed += rs.committed;
        }
        assert_eq!(committed, n);
        let mut store = store;
        assert_eq!(store.snapshot().iter().sum::<i64>(), 0);
    }

    #[test]
    fn scoped_baseline_matches_semantics() {
        // The retained scoped-thread baseline must drain the same
        // workload to the same final state.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 64;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 4,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut committed = 0;
        while !ws.is_empty() {
            committed += ex.run_round_scoped(&mut ws, 16, &mut rng).committed;
        }
        assert_eq!(committed, n);
        let mut store = store;
        assert_eq!(store.snapshot().iter().sum::<i64>(), 0);
    }

    #[test]
    fn controller_drives_to_completion() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 128;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = RingOp { store: &store, n };
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut ctl = FixedController::new(16);
        let run = ex.run_with_controller(&mut ws, &mut ctl, 10_000, &mut rng);
        assert_eq!(run.total_committed(), n);
        assert!(ws.is_empty());
        assert!(run.overall_conflict_ratio() < 1.0);
    }

    #[test]
    fn empty_round_reports_zero() {
        let (space, _r) = ring_setup(1);
        struct Nop;
        impl Operator for Nop {
            type Task = ();
            fn execute(&self, _: &(), _: &mut TaskCtx<'_>) -> Result<Vec<()>, Abort> {
                Ok(vec![])
            }
        }
        let op = Nop;
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws: WorkSet<()> = WorkSet::new();
        let mut rng = StdRng::seed_from_u64(6);
        let rs = ex.run_round(&mut ws, 10, &mut rng);
        assert_eq!(rs.launched, 0);
        assert_eq!(rs.conflict_ratio(), 0.0);
    }

    #[test]
    fn spawned_tasks_enter_workset() {
        // Operator that spawns one child (with a stop marker).
        struct Spawner<'s> {
            store: &'s SpecStore<u32>,
        }
        impl Operator for Spawner<'_> {
            type Task = (usize, bool);
            fn execute(
                &self,
                &(i, respawn): &(usize, bool),
                cx: &mut TaskCtx<'_>,
            ) -> Result<Vec<(usize, bool)>, Abort> {
                *cx.write(self.store, i)? += 1;
                Ok(if respawn { vec![(i, false)] } else { vec![] })
            }
        }
        let mut b = LockSpace::builder();
        let r = b.region(4);
        let space = b.build();
        let store = SpecStore::filled(r, 4, 0u32);
        let op = Spawner { store: &store };
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec(vec![(0, true), (1, true), (2, true), (3, true)]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut committed = 0;
        while !ws.is_empty() {
            committed += ex.run_round(&mut ws, 4, &mut rng).committed;
        }
        assert_eq!(committed, 8, "4 originals + 4 spawned");
        let mut store = store;
        assert_eq!(store.snapshot(), vec![2, 2, 2, 2]);
    }

    /// Pearson chi-squared statistic over equiprobable cells.
    fn chi_squared(counts: &[u64], trials: u64) -> f64 {
        let expected = trials as f64 / counts.len() as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    /// A full drain (`m == len`) must be uniform over all n!
    /// permutations — this is the regression test for the audited
    /// tail-draw path (the forced final pick is now skipped entirely,
    /// which must not disturb the distribution).
    #[test]
    fn full_drain_is_uniform_over_permutations() {
        const N: usize = 4;
        const FACT: usize = 24;
        const TRIALS: u64 = 24_000;
        let mut counts = [0u64; FACT];
        let mut rng = StdRng::seed_from_u64(0xFEED);
        for _ in 0..TRIALS {
            let mut ws = WorkSet::from_vec((0..N).collect::<Vec<_>>());
            let perm = ws.sample_drain(N, &mut rng);
            assert!(ws.is_empty());
            // Lehmer code → permutation index.
            let mut idx = 0usize;
            for (i, &p) in perm.iter().enumerate() {
                let smaller = perm[i + 1..].iter().filter(|&&q| q < p).count();
                idx = idx * (N - i) + smaller;
            }
            counts[idx] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "some permutation never drawn"
        );
        let chi2 = chi_squared(&counts, TRIALS);
        // 23 degrees of freedom; 99.9th percentile ≈ 49.7. A uniform
        // sampler fails this roughly once in a thousand seed choices;
        // the seed is fixed, so the test is deterministic.
        assert!(chi2 < 49.7, "chi-squared {chi2:.1} over 24 cells (23 dof)");
    }

    /// A partial drain (`m < len`) must be uniform over ordered
    /// m-prefixes (the drawn batch is a commit-priority permutation,
    /// so order matters).
    #[test]
    fn partial_drain_is_uniform_over_ordered_prefixes() {
        const N: usize = 6;
        const M: usize = 2;
        const CELLS: usize = 30; // 6 * 5 ordered pairs
        const TRIALS: u64 = 30_000;
        let mut counts = [0u64; CELLS];
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..TRIALS {
            let mut ws = WorkSet::from_vec((0..N).collect::<Vec<_>>());
            let batch = ws.sample_drain(M, &mut rng);
            assert_eq!(batch.len(), M);
            assert_eq!(ws.len(), N - M);
            let (a, b) = (batch[0], batch[1]);
            assert_ne!(a, b);
            let cell = a * (N - 1) + if b > a { b - 1 } else { b };
            counts[cell] += 1;
        }
        let chi2 = chi_squared(&counts, TRIALS);
        // 29 dof; 99.9th percentile ≈ 58.3 (fixed seed — deterministic).
        assert!(chi2 < 58.3, "chi-squared {chi2:.1} over 30 cells (29 dof)");
    }

    /// The degenerate cases around the skipped forced draw: a full
    /// drain of one element consumes no RNG words, and every full
    /// drain still returns a permutation of the work-set.
    #[test]
    fn full_drain_skips_forced_final_draw() {
        struct CountingRng {
            inner: StdRng,
            words: u64,
        }
        impl rand::RngCore for CountingRng {
            fn next_u64(&mut self) -> u64 {
                self.words += 1;
                self.inner.next_u64()
            }
        }
        let mut rng = CountingRng {
            inner: StdRng::seed_from_u64(3),
            words: 0,
        };

        let mut ws = WorkSet::from_vec(vec![42usize]);
        assert_eq!(ws.sample_drain(1, &mut rng), vec![42]);
        assert_eq!(rng.words, 0, "a 1-element drain is fully forced");

        let mut ws = WorkSet::from_vec((0..5usize).collect::<Vec<_>>());
        let mut perm = ws.sample_drain(5, &mut rng);
        // Rejection sampling may retry, so only a lower bound is exact:
        // at least one word per free draw, none for the forced one.
        assert!(rng.words >= 4);
        perm.sort_unstable();
        assert_eq!(perm, vec![0, 1, 2, 3, 4]);
    }

    /// Operator that panics exactly once (on task `13`, first sight),
    /// then behaves like [`RingOp`].
    struct PanicOnceOp<'s> {
        store: &'s SpecStore<i64>,
        n: usize,
        armed: std::sync::atomic::AtomicBool,
    }

    impl Operator for PanicOnceOp<'_> {
        type Task = usize;

        fn execute(&self, &i: &usize, cx: &mut TaskCtx<'_>) -> Result<Vec<usize>, Abort> {
            if i == 13 && self.armed.swap(false, Ordering::AcqRel) {
                panic!("op blew up on task 13");
            }
            let j = (i + 1) % self.n;
            *cx.write(self.store, i)? += 1;
            *cx.write(self.store, j)? -= 1;
            Ok(vec![])
        }
    }

    #[test]
    fn operator_panic_is_contained_sequentially() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 16;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = PanicOnceOp {
            store: &store,
            n,
            armed: std::sync::atomic::AtomicBool::new(true),
        };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 1,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut committed = 0;
        let mut faulted = 0;
        while !ws.is_empty() {
            let rs = ex.run_round(&mut ws, 8, &mut rng);
            assert_eq!(rs.launched, rs.committed + rs.aborted + rs.faulted);
            committed += rs.committed;
            faulted += rs.faulted;
        }
        assert_eq!(
            committed, n,
            "the panicked task was re-queued and committed"
        );
        assert_eq!(faulted, 1);
        assert_eq!(ex.fault_count(), 1);
        let faults = ex.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].cause, FaultCause::OperatorPanic);
        assert!(faults[0].detail.contains("op blew up on task 13"));
        let mut store = store;
        assert_eq!(store.snapshot().iter().sum::<i64>(), 0);
        assert!(
            space.check_all_free().is_ok(),
            "faulted locks were released"
        );
    }

    #[test]
    fn operator_panic_keeps_workers_alive() {
        let mut rng = StdRng::seed_from_u64(22);
        let n = 64;
        let (space, r) = ring_setup(n);
        let store = SpecStore::filled(r, n, 0i64);
        let op = PanicOnceOp {
            store: &store,
            n,
            armed: std::sync::atomic::AtomicBool::new(true),
        };
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 4,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..n).collect::<Vec<_>>());
        let mut committed = 0;
        while !ws.is_empty() {
            committed += ex.run_round(&mut ws, 16, &mut rng).committed;
        }
        assert_eq!(committed, n);
        assert_eq!(ex.fault_count(), 1);
        assert_eq!(
            ex.live_workers(),
            Some(4),
            "panic containment keeps every pool thread alive"
        );
        assert_eq!(ex.worker_panics(), 0, "no panic escaped to the pool layer");
        let mut store = store;
        assert_eq!(store.snapshot().iter().sum::<i64>(), 0);
    }

    /// Adversarial clique: every task writes the same slot, so exactly
    /// one task commits per round and the draw decides which.
    struct CliqueOp<'s> {
        store: &'s SpecStore<i64>,
    }

    impl Operator for CliqueOp<'_> {
        type Task = usize;

        fn execute(&self, &i: &usize, cx: &mut TaskCtx<'_>) -> Result<Vec<usize>, Abort> {
            *cx.write(self.store, 0)? = i as i64;
            Ok(vec![])
        }
    }

    #[test]
    fn aged_task_leads_the_prefix_and_commits() {
        let mut rng = StdRng::seed_from_u64(23);
        let (space, r) = ring_setup(1);
        let store = SpecStore::filled(r, 1, -1i64);
        let op = CliqueOp { store: &store };
        let budget = 8;
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 1,
                policy: ConflictPolicy::FirstWins,
                retry_budget: budget,
                ..ExecutorConfig::default()
            },
        );
        // Seven attackers enqueued before the victim, so neither seq
        // order nor the draw favors it — only aging does.
        let mut ws = WorkSet::new();
        for i in 1..8usize {
            ws.push(i);
        }
        ws.push_with_retries(42, budget);
        let rs = ex.run_round(&mut ws, 8, &mut rng);
        assert_eq!(rs.launched, 8);
        assert_eq!(rs.committed, 1, "a clique commits exactly one task");
        let mut store = store;
        assert_eq!(
            store.snapshot()[0],
            42,
            "the aged victim led the prefix and won the round"
        );
    }

    #[test]
    fn watchdog_shrinks_m_to_one_under_stall() {
        // An operator that never commits: every execution requests an
        // abort, so every round is a zero-commit round.
        struct NeverOp;
        impl Operator for NeverOp {
            type Task = usize;
            fn execute(&self, _: &usize, cx: &mut TaskCtx<'_>) -> Result<Vec<usize>, Abort> {
                cx.abort_requested()?;
                Ok(vec![])
            }
        }
        let (space, _r) = ring_setup(1);
        let op = NeverOp;
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 1,
                policy: ConflictPolicy::FirstWins,
                watchdog_stall: 2,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..64usize).collect::<Vec<_>>());
        let mut ctl = FixedController::new(64);
        let mut rng = StdRng::seed_from_u64(24);
        let run = ex.run_with_controller(&mut ws, &mut ctl, 16, &mut rng);
        let ms = run.m_series();
        assert_eq!(ms[0], 64, "watchdog is quiet before the stall threshold");
        assert_eq!(ms[1], 64);
        assert!(
            ms.contains(&1),
            "sustained zero-commit rounds must drive m to 1, got {ms:?}"
        );
        // Once at 1 the override holds while the stall persists.
        assert_eq!(*ms.last().expect("rounds ran"), 1);
        assert_eq!(run.total_committed(), 0);
    }

    #[test]
    fn disabled_watchdog_never_overrides() {
        struct NeverOp;
        impl Operator for NeverOp {
            type Task = usize;
            fn execute(&self, _: &usize, cx: &mut TaskCtx<'_>) -> Result<Vec<usize>, Abort> {
                cx.abort_requested()?;
                Ok(vec![])
            }
        }
        let (space, _r) = ring_setup(1);
        let op = NeverOp;
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 1,
                policy: ConflictPolicy::FirstWins,
                watchdog_stall: u32::MAX,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec((0..8usize).collect::<Vec<_>>());
        let mut ctl = FixedController::new(8);
        let mut rng = StdRng::seed_from_u64(25);
        let run = ex.run_with_controller(&mut ws, &mut ctl, 12, &mut rng);
        assert!(run.m_series().iter().all(|&m| m == 8));
    }
}

//! Speculation-aware shared storage.
//!
//! A [`SpecStore<T>`] is a fixed-capacity array of `T` whose slots are
//! protected one-to-one by the abstract locks of a
//! [`crate::lock::Region`]. All access goes through
//! [`TaskCtx`](crate::task::TaskCtx), which verifies lock ownership
//! before handing out references and snapshots old values for
//! rollback.
//!
//! # Capacity and allocation
//!
//! Morphing workloads (Delaunay refinement, Boruvka contraction) create
//! new data at run time. [`SpecStore::alloc`] hands out fresh slots
//! from the pre-sized capacity with a single `fetch_add`; allocation is
//! **not** rolled back on abort — an aborted task's freshly allocated
//! slots simply leak (they are unreachable from committed state).
//! Applications size their stores with slack accordingly; running out
//! of capacity is a panic, not UB.

use crate::lock::Region;
use crate::shard::ShardMap;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared, lock-protected array of `T`.
pub struct SpecStore<T> {
    region: Region,
    slots: Box<[UnsafeCell<T>]>,
    live: AtomicUsize,
    /// Partition-derived physical layout (`None` = identity). When
    /// present, logical index `i` lives at physical slot
    /// `shard.phys(i)` and is protected by the lock at the same
    /// physical offset, so a shard's data and lock words are
    /// contiguous, cache-line-aligned slabs. The public API stays
    /// logical throughout.
    shard: Option<Arc<ShardMap>>,
    /// Checker builds count every raw slot-pointer handout, so audits
    /// can reconcile traced accesses against actual data touches (one
    /// `slot_ptr` call per `TaskCtx::read`/`TaskCtx::write`).
    #[cfg(feature = "checker")]
    raw_accesses: AtomicUsize,
}

// SAFETY: slots are only dereferenced through `TaskCtx`, which proves
// exclusive abstract-lock ownership of the slot before creating a
// reference, and tasks never hold references across lock release. `T:
// Send` is required because values move between worker threads across
// rounds.
unsafe impl<T: Send> Sync for SpecStore<T> {}
// SAFETY: moving the store moves its values; `T: Send` suffices for
// the transfer (UnsafeCell wrappers impose no thread affinity).
unsafe impl<T: Send> Send for SpecStore<T> {}

impl<T> SpecStore<T> {
    /// Create a store over `region`, fully initialized by `init`
    /// (`init.len()` must equal the region length = capacity), with the
    /// first `live` slots considered allocated.
    ///
    /// # Panics
    /// Panics on a capacity mismatch or `live > capacity`.
    pub fn new(region: Region, init: Vec<T>, live: usize) -> Self {
        assert_eq!(
            init.len(),
            region.len(),
            "store must be initialized to full capacity"
        );
        assert!(live <= region.len());
        SpecStore {
            region,
            slots: init.into_iter().map(UnsafeCell::new).collect(),
            live: AtomicUsize::new(live),
            shard: None,
            #[cfg(feature = "checker")]
            raw_accesses: AtomicUsize::new(0),
        }
    }

    /// Create a store laid out by `map`: logical element `i` of `init`
    /// is placed at physical slot `map.phys(i)`, alignment gaps are
    /// filled with clones of `pad` and never addressed. The region must
    /// span the padded capacity (allocate it with
    /// [`LockSpaceBuilder::region_aligned`](crate::lock::LockSpaceBuilder::region_aligned)
    /// so shard lock slabs keep their cache-line alignment).
    ///
    /// Sharded stores are fixed-size: [`SpecStore::alloc`] panics on
    /// them, because a fresh slot has no home shard.
    ///
    /// # Panics
    /// Panics unless `init.len() == map.len()` and
    /// `region.len() == map.padded_len()`.
    pub fn new_sharded(region: Region, init: Vec<T>, pad: T, map: Arc<ShardMap>) -> Self
    where
        T: Clone,
    {
        assert_eq!(init.len(), map.len(), "one value per logical element");
        assert_eq!(
            region.len(),
            map.padded_len(),
            "region must span the padded capacity"
        );
        let mut slots: Vec<T> = vec![pad; map.padded_len()];
        for (i, v) in init.into_iter().enumerate() {
            slots[map.phys(i)] = v;
        }
        let live = map.len();
        SpecStore {
            region,
            slots: slots.into_iter().map(UnsafeCell::new).collect(),
            live: AtomicUsize::new(live),
            shard: Some(map),
            #[cfg(feature = "checker")]
            raw_accesses: AtomicUsize::new(0),
        }
    }

    /// Create with `live` slots cloned from `value` and the rest of the
    /// capacity filled with clones too.
    pub fn filled(region: Region, live: usize, value: T) -> Self
    where
        T: Clone,
    {
        let cap = region.len();
        Self::new(region, vec![value; cap], live)
    }

    /// Create from initial contents, padding capacity with `pad`.
    pub fn from_vec(region: Region, mut init: Vec<T>, pad: T) -> Self
    where
        T: Clone,
    {
        let live = init.len();
        assert!(
            live <= region.len(),
            "initial contents ({live}) exceed capacity ({})",
            region.len()
        );
        init.resize(region.len(), pad);
        Self::new(region, init, live)
    }

    /// The lock region backing this store.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The shard layout, if this store is sharded.
    pub fn shard_map(&self) -> Option<&Arc<ShardMap>> {
        self.shard.as_ref()
    }

    /// Physical slot of logical index `i` (identity when unsharded).
    #[inline]
    fn phys(&self, i: usize) -> usize {
        match &self.shard {
            Some(m) => m.phys(i),
            None => i,
        }
    }

    /// Global lock index protecting logical slot `i`. This — not
    /// `region().lock_of(i)` — is the routing every lock/read/write
    /// must use: on a sharded store the protecting lock sits at the
    /// *physical* offset, inside the shard's lock slab.
    #[inline]
    pub fn lock_of(&self, i: usize) -> usize {
        self.region.lock_of(self.phys(i))
    }

    /// Shard of logical slot `i` (`0` when unsharded: the whole store
    /// is one shard).
    #[inline]
    pub fn shard_of(&self, i: usize) -> usize {
        match &self.shard {
            Some(m) => m.part_of(i),
            None => 0,
        }
    }

    /// Capacity (total slots ever available).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of allocated (live-prefix) slots.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// Is the live prefix empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a fresh slot, returning its index.
    ///
    /// # Panics
    /// Panics when capacity is exhausted, or on a sharded store (a
    /// fresh slot has no home shard; sharded stores are fixed-size).
    pub fn alloc(&self) -> usize {
        assert!(
            self.shard.is_none(),
            "alloc on a sharded SpecStore: sharded stores are fixed-size"
        );
        let i = self.live.fetch_add(1, Ordering::AcqRel);
        assert!(
            i < self.capacity(),
            "SpecStore capacity {} exhausted",
            self.capacity()
        );
        i
    }

    /// Raw pointer to slot `i` (for `TaskCtx` and undo entries only).
    ///
    /// # Panics
    /// Panics if `i` is beyond the live prefix.
    #[inline]
    pub(crate) fn slot_ptr(&self, i: usize) -> *mut T {
        assert!(i < self.len(), "slot {i} beyond live prefix {}", self.len());
        #[cfg(feature = "checker")]
        self.raw_accesses.fetch_add(1, Ordering::AcqRel);
        self.slots[self.phys(i)].get()
    }

    /// Total raw slot-pointer handouts so far (checker builds only).
    ///
    /// Every `TaskCtx::read`/`TaskCtx::write` takes exactly one raw
    /// pointer, so this must equal the number of traced access events
    /// across all rounds — a cross-layer reconciliation invariant.
    #[cfg(feature = "checker")]
    pub fn raw_access_count(&self) -> usize {
        self.raw_accesses.load(Ordering::Acquire)
    }

    /// Read slot `i` outside speculation (requires `&mut self`, i.e.
    /// quiescence — typically between rounds or after a run).
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len());
        let p = self.phys(i);
        self.slots[p].get_mut()
    }

    /// Immutable snapshot of the live prefix outside speculation, in
    /// logical order.
    pub fn snapshot(&mut self) -> Vec<T>
    where
        T: Clone,
    {
        let n = self.len();
        (0..n)
            .map(|i| {
                let p = self.phys(i);
                self.slots[p].get_mut().clone()
            })
            .collect()
    }

    /// Iterate the live prefix outside speculation, in logical order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        let n = self.len();
        (0..n).map(move |i| {
            let ptr = self.slots[self.phys(i)].get();
            // SAFETY: `&mut self` grants exclusive access to every
            // slot, and `phys` is injective over `0..n`, so each slot
            // is yielded at most once — the returned `&mut T`s never
            // alias.
            unsafe { &mut *ptr }
        })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SpecStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecStore")
            .field("capacity", &self.capacity())
            .field("live", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::LockSpace;

    fn region(cap: usize) -> Region {
        let mut b = LockSpace::builder();
        let r = b.region(cap);
        let _ = b.build();
        r
    }

    #[test]
    fn construction_variants() {
        let r = region(8);
        let mut s = SpecStore::filled(r, 3, 7u32);
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.len(), 3);
        assert_eq!(*s.get_mut(2), 7);

        let r = region(4);
        let mut s = SpecStore::from_vec(r, vec![1, 2], 0);
        assert_eq!(s.len(), 2);
        assert_eq!(*s.get_mut(1), 2);
        assert_eq!(s.snapshot(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "full capacity")]
    fn wrong_capacity_panics() {
        let r = region(4);
        let _ = SpecStore::new(r, vec![0u8; 3], 3);
    }

    #[test]
    fn alloc_extends_live_prefix() {
        let r = region(3);
        let s = SpecStore::filled(r, 1, 0i64);
        assert_eq!(s.alloc(), 1);
        assert_eq!(s.alloc(), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_past_capacity_panics() {
        let r = region(1);
        let s = SpecStore::filled(r, 1, 0u8);
        let _ = s.alloc();
    }

    #[test]
    #[should_panic(expected = "beyond live prefix")]
    fn slot_ptr_respects_live_prefix() {
        let r = region(4);
        let s = SpecStore::filled(r, 2, 0u8);
        let _ = s.slot_ptr(2);
    }

    #[test]
    fn iter_mut_covers_live_only() {
        let r = region(5);
        let mut s = SpecStore::from_vec(r, vec![1, 2, 3], 0);
        for v in s.iter_mut() {
            *v += 10;
        }
        assert_eq!(s.snapshot(), vec![11, 12, 13]);
    }

    #[test]
    fn sharded_store_is_logically_transparent() {
        // 6 elements alternating over 2 shards: the logical API must
        // behave exactly as if the store were unsharded.
        let parts = vec![0u32, 1, 0, 1, 0, 1];
        let map = std::sync::Arc::new(crate::shard::ShardMap::from_parts(&parts, 2));
        let r = region(map.padded_len());
        let mut s = SpecStore::new_sharded(r, vec![10, 11, 12, 13, 14, 15], -1, map.clone());
        assert_eq!(s.len(), 6);
        assert_eq!(s.capacity(), map.padded_len());
        assert_eq!(s.snapshot(), vec![10, 11, 12, 13, 14, 15]);
        for (i, v) in s.iter_mut().enumerate() {
            *v += i as i32;
        }
        assert_eq!(s.snapshot(), vec![10, 12, 14, 16, 18, 20]);
        *s.get_mut(5) = 99;
        assert_eq!(s.snapshot()[5], 99);
        // Lock routing follows the permutation: same-shard neighbours
        // map to adjacent physical locks, cross-shard ones do not.
        assert_eq!(s.lock_of(2), s.lock_of(0) + 1);
        assert_eq!(s.shard_of(0), 0);
        assert_eq!(s.shard_of(1), 1);
        assert_ne!(s.lock_of(0) / 64, s.lock_of(1) / 64, "shard slabs share a line");
    }

    #[test]
    #[should_panic(expected = "fixed-size")]
    fn alloc_on_sharded_store_panics() {
        let parts = vec![0u32; 4];
        let map = std::sync::Arc::new(crate::shard::ShardMap::from_parts(&parts, 1));
        let r = region(map.padded_len());
        let s = SpecStore::new_sharded(r, vec![0u8; 4], 0, map);
        let _ = s.alloc();
    }

    #[test]
    fn concurrent_alloc_is_unique() {
        let r = region(64);
        let s = SpecStore::filled(r, 0, 0u8);
        let mut all: Vec<usize> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..4)
                .map(|_| sc.spawn(|| (0..16).map(|_| s.alloc()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 64);
    }
}

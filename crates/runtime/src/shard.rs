//! Partition-derived physical layout for sharded stores.
//!
//! A [`ShardMap`] turns a k-way node partition (from
//! `optpar_core::partition` or any other source) into a *physical
//! permutation*: nodes of the same part become contiguous in memory,
//! and every shard's slab starts at a physical index that is a
//! multiple of [`SHARD_ALIGN`] elements. Because `SHARD_ALIGN` is 64,
//! a shard's byte offset into any `SpecStore<T>` slab is a multiple of
//! 64 bytes regardless of `size_of::<T>()`, and its abstract-lock
//! words start on a fresh owner cache line
//! ([`crate::lock::LINE_WORDS`] divides 64). Workers that stay inside
//! their own shard therefore never write a cache line that another
//! shard's workers read — no false sharing on either the data or the
//! lock words.
//!
//! The map is a bijection from *logical* ids (the application's node
//! ids, `0..n`) onto a padded physical range (`0..padded_len`);
//! the padding gaps belong to no shard and are never touched.
//! Applications keep using logical ids everywhere — only
//! [`SpecStore`](crate::store::SpecStore) and the lock router look
//! through the permutation.

/// Shard alignment quantum, in elements. Shard slabs start at physical
/// indices that are multiples of this, which makes their byte offsets
/// multiples of 64 for every element size and their lock-word offsets
/// multiples of [`crate::lock::LINE_WORDS`].
pub const SHARD_ALIGN: usize = 64;

/// A k-way shard layout: logical→physical permutation plus the part
/// assignment it was built from.
pub struct ShardMap {
    k: usize,
    /// Part id of each logical element.
    part: Box<[u32]>,
    /// Physical slot of each logical element.
    phys: Box<[u32]>,
    /// First physical slot of each shard (multiple of `SHARD_ALIGN`).
    bases: Box<[usize]>,
    /// Element count of each shard.
    sizes: Box<[usize]>,
    padded: usize,
}

impl ShardMap {
    /// Build the layout from a part assignment (`parts[v] < k` for
    /// every logical element `v`). Elements keep their relative order
    /// within a shard, so the permutation is deterministic.
    ///
    /// # Panics
    /// Panics if `k == 0`, any part id is out of range, or the padded
    /// length would overflow `u32` physical indices.
    pub fn from_parts(parts: &[u32], k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let mut sizes = vec![0usize; k];
        for &p in parts {
            assert!((p as usize) < k, "part id {p} out of range for k={k}");
            sizes[p as usize] += 1;
        }
        let mut bases = vec![0usize; k];
        let mut cursor = 0usize;
        for s in 0..k {
            bases[s] = cursor;
            cursor += sizes[s].next_multiple_of(SHARD_ALIGN);
        }
        let padded = cursor;
        assert!(
            padded <= u32::MAX as usize,
            "padded layout ({padded}) exceeds u32 physical indices"
        );
        let mut next = bases.clone();
        let mut phys = vec![0u32; parts.len()];
        for (v, &p) in parts.iter().enumerate() {
            phys[v] = next[p as usize] as u32;
            next[p as usize] += 1;
        }
        ShardMap {
            k,
            part: parts.into(),
            phys: phys.into(),
            bases: bases.into(),
            sizes: sizes.into(),
            padded,
        }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of logical elements.
    pub fn len(&self) -> usize {
        self.part.len()
    }

    /// Is the layout empty?
    pub fn is_empty(&self) -> bool {
        self.part.is_empty()
    }

    /// Physical capacity including alignment padding. Stores and lock
    /// regions backing this layout must be sized to this.
    pub fn padded_len(&self) -> usize {
        self.padded
    }

    /// Physical slot of logical element `i`.
    #[inline]
    pub fn phys(&self, i: usize) -> usize {
        self.phys[i] as usize
    }

    /// Shard (= part) of logical element `i`.
    #[inline]
    pub fn part_of(&self, i: usize) -> usize {
        self.part[i] as usize
    }

    /// First physical slot of shard `s`.
    pub fn shard_base(&self, s: usize) -> usize {
        self.bases[s]
    }

    /// Element count of shard `s`.
    pub fn shard_size(&self, s: usize) -> usize {
        self.sizes[s]
    }
}

impl std::fmt::Debug for ShardMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMap")
            .field("k", &self.k)
            .field("len", &self.part.len())
            .field("padded_len", &self.padded)
            .field("sizes", &self.sizes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection_onto_shard_slabs() {
        // 10 elements round-robin over 3 parts.
        let parts: Vec<u32> = (0..10u32).map(|v| v % 3).collect();
        let m = ShardMap::from_parts(&parts, 3);
        assert_eq!(m.len(), 10);
        assert_eq!(m.k(), 3);
        // Each shard slab is contiguous, in logical order, at its base.
        let mut seen = std::collections::HashSet::new();
        for v in 0..10 {
            let p = m.part_of(v);
            let ph = m.phys(v);
            assert!(ph >= m.shard_base(p));
            assert!(ph < m.shard_base(p) + m.shard_size(p));
            assert!(seen.insert(ph), "physical slot {ph} assigned twice");
        }
        // Logical order preserved within a shard.
        assert!(m.phys(0) < m.phys(3));
        assert!(m.phys(3) < m.phys(6));
    }

    #[test]
    fn bases_are_aligned_and_padding_is_counted() {
        let parts: Vec<u32> = (0..200u32).map(|v| (v / 70).min(2)).collect();
        let m = ShardMap::from_parts(&parts, 3);
        assert_eq!(m.shard_size(0), 70);
        assert_eq!(m.shard_size(1), 70);
        assert_eq!(m.shard_size(2), 60);
        for s in 0..3 {
            assert_eq!(m.shard_base(s) % SHARD_ALIGN, 0);
        }
        // 70 → 128, 70 → 128, 60 → 64.
        assert_eq!(m.padded_len(), 128 + 128 + 64);
    }

    #[test]
    fn empty_shards_are_tolerated() {
        let parts = vec![2u32, 2, 2];
        let m = ShardMap::from_parts(&parts, 4);
        assert_eq!(m.shard_size(0), 0);
        assert_eq!(m.shard_size(3), 0);
        assert_eq!(m.padded_len(), 64);
        assert_eq!(m.phys(0), m.shard_base(2));
    }

    #[test]
    fn empty_layout() {
        let m = ShardMap::from_parts(&[], 2);
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.padded_len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_part_panics() {
        let _ = ShardMap::from_parts(&[0, 3], 3);
    }
}

//! Property tests for the scale-harness generators (R-MAT, diagonal
//! grids, road-network-like): seed determinism, structural simplicity,
//! exact count formulas, degree bounds, and the R-MAT skew that the
//! uniform families must *not* have.

use optpar_graph::{gen, ConflictGraph, CsrGraph};
use proptest::prelude::*;

/// Structural sanity every generator must guarantee: neighbour lists
/// strictly sorted (no duplicate edges), no self-loops, symmetric
/// adjacency, degree sum = 2|E|.
fn assert_simple(g: &CsrGraph) -> Result<(), TestCaseError> {
    let n = g.node_count() as u32;
    let mut degsum = 0usize;
    for v in 0..n {
        let nb = g.neighbors_slice(v);
        prop_assert!(
            nb.windows(2).all(|w| w[0] < w[1]),
            "node {v}: unsorted or duplicate neighbours"
        );
        for &w in nb {
            prop_assert_ne!(w, v, "self-loop at {}", v);
            prop_assert!(g.has_edge(w, v), "asymmetric edge {v}-{w}");
        }
        degsum += nb.len();
    }
    prop_assert_eq!(degsum, 2 * g.edge_count());
    Ok(())
}

proptest! {
    /// Same `(scale, edge_factor, seed)` ⇒ byte-identical CSR; counts
    /// are exact on nodes and bounded on edges (self-loops and
    /// duplicates are dropped).
    #[test]
    fn rmat_is_seed_deterministic(scale in 6u32..=10, ef in 1usize..=8, seed in any::<u64>()) {
        let g1 = gen::rmat(scale, ef, seed);
        let g2 = gen::rmat(scale, ef, seed);
        prop_assert_eq!(&g1, &g2);
        prop_assert_eq!(g1.node_count(), 1usize << scale);
        prop_assert!(g1.edge_count() <= ef << scale, "more edges than drawn");
        prop_assert!(g1.edge_count() > 0);
        assert_simple(&g1)?;
    }

    /// Different seeds give different graphs (at 2⁹ nodes and ≥ 2⁹
    /// drawn edges, a collision would be astronomically unlikely).
    #[test]
    fn rmat_seeds_decorrelate(seed in any::<u64>()) {
        let g1 = gen::rmat(9, 4, seed);
        let g2 = gen::rmat(9, 4, seed.wrapping_add(1));
        prop_assert_ne!(g1, g2);
    }

    /// GRAPH500 parameters are skewed (a = 0.57): the top decile of
    /// nodes by degree must hold well over its uniform 10% share of
    /// endpoints — the property the partitioner's worst case feeds on.
    /// The same statistic on the diagonal grid stays near-uniform.
    #[test]
    fn rmat_degrees_are_skewed(seed in any::<u64>()) {
        let top_decile_share = |g: &CsrGraph| {
            let mut degs: Vec<usize> =
                (0..g.node_count() as u32).map(|v| g.degree(v)).collect();
            degs.sort_unstable_by(|a, b| b.cmp(a));
            let top: usize = degs[..g.node_count() / 10].iter().sum();
            top as f64 / degs.iter().sum::<usize>().max(1) as f64
        };
        let skewed = top_decile_share(&gen::rmat(10, 8, seed));
        prop_assert!(skewed > 0.3, "top decile holds only {skewed:.3}");
        let flat = top_decile_share(&gen::grid2d_diag(32, 32));
        prop_assert!(skewed > 1.5 * flat, "rmat {skewed:.3} vs grid {flat:.3}");
    }

    /// 2-D Moore grid: exact node and edge counts (horizontal +
    /// vertical + two diagonal families), degree ≤ 8 everywhere and
    /// exactly 8 in the interior.
    #[test]
    fn grid2d_diag_counts_and_degrees(r in 1usize..=24, c in 1usize..=24) {
        let g = gen::grid2d_diag(r, c);
        prop_assert_eq!(g.node_count(), r * c);
        prop_assert_eq!(
            g.edge_count(),
            r * (c - 1) + c * (r - 1) + 2 * (r - 1) * (c - 1)
        );
        for v in 0..(r * c) as u32 {
            prop_assert!(g.degree(v) <= 8);
        }
        if r >= 3 && c >= 3 {
            prop_assert_eq!(g.degree((c + 1) as u32), 8); // interior cell (1,1)
        }
        assert_simple(&g)?;
    }

    /// 3-D Moore grid: the edge count equals the sum over the 13
    /// canonical deltas of the number of in-bounds placements, and
    /// degrees stay ≤ 26.
    #[test]
    fn grid3d_diag_counts_and_degrees(x in 1usize..=7, y in 1usize..=7, z in 1usize..=7) {
        let g = gen::grid3d_diag(x, y, z);
        prop_assert_eq!(g.node_count(), x * y * z);
        let mut expect = 0usize;
        for dz in 0..=1i64 {
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    if (dz, dy, dx) > (0, 0, 0) {
                        expect += x.saturating_sub(dx.unsigned_abs() as usize)
                            * y.saturating_sub(dy.unsigned_abs() as usize)
                            * z.saturating_sub(dz.unsigned_abs() as usize);
                    }
                }
            }
        }
        prop_assert_eq!(g.edge_count(), expect);
        for v in 0..(x * y * z) as u32 {
            prop_assert!(g.degree(v) <= 26);
        }
        assert_simple(&g)?;
    }

    /// Road-network-like: deterministic per `(n, seed)`, simple, with
    /// the low near-planar degrees of its family (streets cap at 8,
    /// each highway level adds ≤ 4; sizes here see ≤ 2 levels).
    #[test]
    fn road_like_is_deterministic_and_local(n in 1usize..=4000, seed in any::<u64>()) {
        let g1 = gen::road_like(n, seed);
        let g2 = gen::road_like(n, seed);
        prop_assert_eq!(&g1, &g2);
        prop_assert_eq!(g1.node_count(), n);
        prop_assert!(g1.max_degree() <= 16, "max degree {}", g1.max_degree());
        if n >= 1000 {
            let avg = g1.average_degree();
            prop_assert!((3.0..=5.0).contains(&avg), "avg degree {avg}");
        }
        assert_simple(&g1)?;
    }
}

//! Allocation-count regression test for the geometric generator.
//!
//! `geometric_from_points` once kept a `HashMap` of per-cell `Vec`s,
//! costing one heap allocation per occupied grid cell — thousands at
//! 10⁴ points, millions at scale. The counting-sort CSR-of-cells
//! rewrite does a fixed number of flat-array allocations plus
//! amortized-doubling growth of the edge list, so the count is
//! O(log n), independent of the occupied-cell count. This test pins
//! that with a counting global allocator; it lives in its own test
//! binary so no concurrent test pollutes the counter.

use optpar_graph::gen::{geometric_from_points, radius_for_degree};
use optpar_graph::ConflictGraph;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to the System allocator; every contract
// (layout validity, pointer provenance) is forwarded unchanged, and
// the counter bump has no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; we forward it.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::AcqRel);
        // SAFETY: same layout the caller handed us.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; we forward it.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by our `alloc`, which delegated
        // to System with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; we forward it.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::AcqRel);
        // SAFETY: `ptr`/`layout` originate from our `alloc`; the new
        // size is the caller's, forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn geometric_build_allocation_count_is_flat() {
    // Deterministic quasi-random points (no rand dependency needed):
    // a Weyl sequence fills the unit square uniformly enough for a
    // realistic cell occupancy profile.
    let n = 10_000;
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let x = (i as f64 * 0.754877666246693) % 1.0;
            let y = (i as f64 * 0.569840290998053) % 1.0;
            (x, y)
        })
        .collect();
    let radius = radius_for_degree(n, 8.0);

    // Warm-up build outside the measurement window (lazy runtime
    // structures, first-touch effects).
    let warm = geometric_from_points(&pts, radius);
    assert!(warm.edge_count() > n, "degree-8 target produced {} edges", warm.edge_count());

    let before = ALLOCS.load(Ordering::Acquire);
    let g = geometric_from_points(&pts, radius);
    let delta = ALLOCS.load(Ordering::Acquire) - before;

    // Occupied cells at this size: thousands (side is clamped to
    // O(√n) = 200, cell fill ≈ 0.25). The per-cell-Vec implementation
    // allocated at least once per occupied cell; the counting-sort
    // build must stay two orders of magnitude below that — a handful
    // of flat arrays, ~log₂(m) edge-list doublings, and the CSR
    // finalization.
    assert!(
        delta < 150,
        "geometric build did {delta} allocations for {n} points — \
         per-cell allocation regression?"
    );
    assert_eq!(g.node_count(), n);
    assert_eq!(g, warm);
}

//! Property-based tests for the graph substrate.

use optpar_graph::{gen, mis, AdjGraph, ConflictGraph, CsrGraph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// Strategy: a small random edge list over `n` nodes.
fn edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..=max_edges)
}

proptest! {
    #[test]
    fn csr_from_edges_invariants(el in edges(12, 40)) {
        let g = CsrGraph::from_edges(12, &el);
        // Counts agree with the canonical edge list.
        prop_assert_eq!(g.edge_count(), g.edge_list().len());
        // Symmetry and sortedness.
        for v in 0..12u32 {
            let nb = g.neighbors_slice(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
            for &w in nb {
                prop_assert!(g.has_edge(w, v));
                prop_assert_ne!(w, v);
            }
        }
        // Degree sum = 2|E|.
        let degsum: usize = (0..12u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.edge_count());
    }

    #[test]
    fn csr_round_trip(el in edges(10, 30)) {
        let g = CsrGraph::from_edges(10, &el);
        let g2 = CsrGraph::from_edges(10, &g.edge_list());
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn disjoint_union_counts(el1 in edges(6, 12), el2 in edges(7, 14)) {
        let a = CsrGraph::from_edges(6, &el1);
        let b = CsrGraph::from_edges(7, &el2);
        let u = a.disjoint_union(&b);
        prop_assert_eq!(u.node_count(), 13);
        prop_assert_eq!(u.edge_count(), a.edge_count() + b.edge_count());
        prop_assert_eq!(
            u.connected_components(),
            a.connected_components() + b.connected_components()
        );
    }

    #[test]
    fn adj_graph_random_ops_keep_invariants(
        ops in prop::collection::vec((0u8..4, 0u32..10, 0u32..10), 1..80)
    ) {
        let mut g = AdjGraph::with_nodes(10);
        for (op, a, b) in ops {
            match op {
                0 => {
                    if g.is_alive(a) && g.is_alive(b) && a != b {
                        g.add_edge(a, b);
                    }
                }
                1 => {
                    g.remove_edge(a, b);
                }
                2 => {
                    if g.is_alive(a) && g.node_count() > 1 {
                        g.remove_node(a);
                    }
                }
                _ => {
                    let _ = g.add_node();
                }
            }
            prop_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
        }
    }

    #[test]
    fn compaction_preserves_structure(el in edges(10, 25), kill in prop::collection::vec(0u32..10, 0..5)) {
        let csr = CsrGraph::from_edges(10, &el);
        let mut adj = AdjGraph::from_csr(&csr);
        let mut killed = std::collections::HashSet::new();
        for v in kill {
            if adj.is_alive(v) && adj.node_count() > 1 {
                adj.remove_node(v);
                killed.insert(v);
            }
        }
        let (c, map) = adj.to_csr_compact();
        prop_assert_eq!(c.node_count(), adj.node_count());
        prop_assert_eq!(c.edge_count(), adj.edge_count());
        // Every surviving edge maps correctly.
        for v in adj.live_nodes_vec() {
            for &w in adj.neighbors_slice(v) {
                prop_assert!(c.has_edge(map[v as usize].unwrap(), map[w as usize].unwrap()));
            }
        }
    }

    #[test]
    fn greedy_prefix_commits_are_maximal_in_induced(
        el in edges(14, 40),
        seed in any::<u64>(),
        m in 1usize..=14
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let g = CsrGraph::from_edges(14, &el);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut perm: Vec<NodeId> = (0..14).collect();
        perm.shuffle(&mut rng);
        let prefix = &perm[..m];
        let commits = mis::greedy_prefix_mis(&g, prefix);
        prop_assert!(mis::is_maximal_in_induced(&g, prefix, &commits));
        // Eager set is a subset-by-size lower bound.
        let eager = mis::eager_prefix_is(&g, prefix);
        prop_assert!(eager.len() <= commits.len());
        prop_assert!(mis::is_independent_set(&g, &eager));
    }

    #[test]
    fn whole_graph_greedy_mis_maximal(el in edges(16, 50), seed in any::<u64>()) {
        use rand::SeedableRng;
        let g = CsrGraph::from_edges(16, &el);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = mis::greedy_random_mis(&g, &mut rng);
        prop_assert!(mis::is_maximal_independent_set(&g, &s));
    }

    #[test]
    fn exact_em_bounds(el in edges(7, 12), m in 1usize..=7) {
        let g = CsrGraph::from_edges(7, &el);
        let em = mis::exact_em_m(&g, m);
        prop_assert!(em >= 1.0 - 1e-12, "at least one node always commits");
        prop_assert!(em <= m as f64 + 1e-12);
        // k̄ = m − EM is consistent.
        prop_assert!((mis::exact_kbar(&g, m) - (m as f64 - em)).abs() < 1e-12);
    }

    #[test]
    fn turan_holds_exactly_on_full_prefix(el in edges(7, 12)) {
        // E[|greedy-random MIS|] ≥ n/(d+1) — check with the exact
        // enumerator (strong Turán, Thm. 1).
        let g = CsrGraph::from_edges(7, &el);
        let em = mis::exact_em_m(&g, 7);
        let bound = 7.0 / (g.average_degree() + 1.0);
        prop_assert!(em >= bound - 1e-9, "EM {em} < Turán {bound}");
    }

    #[test]
    fn builder_matches_from_edges(el in edges(9, 20)) {
        let direct = CsrGraph::from_edges(9, &el);
        let mut b = GraphBuilder::new(9);
        for (u, v) in el {
            b.edge(u, v);
        }
        prop_assert_eq!(direct, b.build());
    }

    #[test]
    fn gnm_generator_properties(n in 2usize..40, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let max = n * (n - 1) / 2;
        let m = seed as usize % (max + 1);
        let g = gen::gnm(n, m, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), m);
    }
}

#![warn(missing_docs)]

//! Graph substrate for the *optpar* workspace.
//!
//! This crate provides every graph-shaped building block the paper
//! ["Processor Allocation for Optimistic Parallelization of Irregular
//! Programs" (Versaci & Pingali)] needs:
//!
//! * [`CsrGraph`] — a compact, immutable compressed-sparse-row graph used
//!   for analysis (conflict-ratio estimation, independent-set theory).
//! * [`AdjGraph`] — a mutable adjacency graph supporting node/edge
//!   insertion and removal, used by the round-based scheduler where
//!   committed computations are removed from the
//!   computations/conflicts (CC) graph and new ones may be added
//!   ("morphing").
//! * [`gen`] — generators for all graph families the paper evaluates:
//!   uniform random graphs `G(n, m)` (Fig. 2 ii), the worst-case
//!   clique-union `K_d^n` (Thm. 2/3), unions of cliques and isolated
//!   nodes (Fig. 2 iii, Example 1), meshes (the unfriendly-seating
//!   setting), and preferential-attachment graphs (skewed degrees).
//! * [`mis`] — maximal-independent-set machinery: the greedy
//!   random-permutation MIS of Turán's strong theorem, the
//!   permutation-prefix commit rule of the paper's §2 model, and exact
//!   expectation computations (`EM_m`) for small graphs used as test
//!   oracles.
//! * [`stats`] — degree statistics and graph summaries.
//!
//! All randomized entry points take an explicit [`rand::Rng`] so every
//! downstream experiment is reproducible from a seed.

pub mod adj;
pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod mis;
pub mod stats;

pub use adj::AdjGraph;
pub use builder::GraphBuilder;
pub use csr::CsrGraph;

/// Node identifier used across the workspace.
///
/// `u32` comfortably covers the problem sizes of the paper (thousands
/// to millions of nodes) at half the memory of `usize` on 64-bit.
pub type NodeId = u32;

/// A read-only conflict-graph interface.
///
/// The paper's model (§2) only ever asks two questions of the CC graph:
/// how many nodes are there, and who are the neighbours of a node. Both
/// [`CsrGraph`] and [`AdjGraph`] implement this, so the scheduler model
/// and the estimators in `optpar-core` are generic over storage.
pub trait ConflictGraph {
    /// Number of nodes currently in the graph (for [`AdjGraph`], the
    /// number of *live* nodes).
    fn node_count(&self) -> usize;

    /// Number of undirected edges currently in the graph.
    fn edge_count(&self) -> usize;

    /// Iterate over the identifiers of all live nodes.
    fn nodes(&self) -> Box<dyn Iterator<Item = NodeId> + '_>;

    /// Iterate over the neighbours of `v`.
    ///
    /// # Panics
    /// May panic if `v` is not a live node of the graph.
    fn neighbors(&self, v: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_>;

    /// Degree of `v` (count of live neighbours).
    fn degree(&self, v: NodeId) -> usize;

    /// `true` iff `u` and `v` are adjacent.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).any(|w| w == v)
    }

    /// Average degree `d = 2|E| / |V|`, the quantity driving every bound
    /// in §3 of the paper. Returns 0 for the empty graph.
    fn average_degree(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / n as f64
        }
    }
}

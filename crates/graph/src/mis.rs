//! Maximal-independent-set machinery.
//!
//! The paper's execution model (§2) is: draw a uniformly random
//! permutation `π` of the live nodes, launch the first `m` (the
//! *active* nodes), and let them commit in permutation order — a node
//! commits iff none of its neighbours has *already committed*. The
//! committed set is therefore the greedy maximal independent set of the
//! subgraph induced by the active nodes, built in permutation order
//! ([`greedy_prefix_mis`]).
//!
//! Two related constructions are also provided:
//! * [`greedy_random_mis`] — the whole-graph greedy-random MIS from the
//!   strong form of Turán's theorem (Thm. 1): expected size ≥ n/(d+1).
//! * [`eager_prefix_is`] — the *pessimistic* independent set `IS_m` of
//!   the paper's Thm. 2 proof: a node survives only if **no** neighbour
//!   (committed or not) precedes it. This under-counts commits
//!   (`b_m(G) ≤ EM_m(G)`) and admits the closed-form expectation of
//!   Eq. (19), making it the bridge between simulation and theory.
//!
//! For small graphs, [`exact_em_m`] computes `EM_m` exactly by
//! enumerating all permutations — the test oracle for the Monte-Carlo
//! estimators in `optpar-core`.

use crate::{ConflictGraph, CsrGraph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Greedy maximal independent set over a random permutation of all
/// nodes (Turán's strong form, Thm. 1 of the paper).
///
/// Returns the committed nodes in commit order. The expected size is at
/// least `n / (d + 1)` where `d` is the average degree.
pub fn greedy_random_mis<R: Rng + ?Sized>(g: &CsrGraph, rng: &mut R) -> Vec<NodeId> {
    let mut perm: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
    perm.shuffle(rng);
    greedy_prefix_mis(g, &perm)
}

/// The paper's commit rule: process `prefix` in order; a node commits
/// iff no neighbour of it has already committed. Returns committed
/// nodes in commit order.
///
/// The result is always a *maximal* independent set of the subgraph
/// induced by `prefix`.
///
/// `prefix` must contain distinct live nodes of `g`.
pub fn greedy_prefix_mis(g: &CsrGraph, prefix: &[NodeId]) -> Vec<NodeId> {
    let mut committed = vec![false; g.node_count()];
    let mut out = Vec::with_capacity(prefix.len());
    'outer: for &v in prefix {
        for &w in g.neighbors_slice(v) {
            if committed[w as usize] {
                continue 'outer;
            }
        }
        committed[v as usize] = true;
        out.push(v);
    }
    out
}

/// The pessimistic independent set `IS_m` of Thm. 2's proof: a node of
/// `prefix` survives iff **no neighbour precedes it in `prefix`**,
/// whether or not that neighbour itself survived.
///
/// `|eager_prefix_is| ≤ |greedy_prefix_mis|` pointwise on every
/// permutation, hence `b_m(G) ≤ EM_m(G)` in expectation.
pub fn eager_prefix_is(g: &CsrGraph, prefix: &[NodeId]) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut out = Vec::new();
    'outer: for &v in prefix {
        // Mark first, then test neighbours against *previously seen*.
        for &w in g.neighbors_slice(v) {
            if seen[w as usize] {
                seen[v as usize] = true;
                continue 'outer;
            }
        }
        seen[v as usize] = true;
        out.push(v);
    }
    out
}

/// Is `set` an independent set of `g`?
pub fn is_independent_set(g: &CsrGraph, set: &[NodeId]) -> bool {
    let mut inset = vec![false; g.node_count()];
    for &v in set {
        inset[v as usize] = true;
    }
    set.iter()
        .all(|&v| g.neighbors_slice(v).iter().all(|&w| !inset[w as usize]))
}

/// Is `set` a *maximal* independent set of `g` (no node of `g` can be
/// added)?
pub fn is_maximal_independent_set(g: &CsrGraph, set: &[NodeId]) -> bool {
    if !is_independent_set(g, set) {
        return false;
    }
    let mut inset = vec![false; g.node_count()];
    for &v in set {
        inset[v as usize] = true;
    }
    (0..g.node_count() as NodeId)
        .all(|v| inset[v as usize] || g.neighbors_slice(v).iter().any(|&w| inset[w as usize]))
}

/// Is `set` a maximal independent set *of the subgraph induced by
/// `active`*? This is the property the paper's Fig. 1 (iii) depicts:
/// after conflicts are resolved, the committed nodes form a maximal IS
/// in the subgraph induced by the initial node choice.
pub fn is_maximal_in_induced(g: &CsrGraph, active: &[NodeId], set: &[NodeId]) -> bool {
    let mut inset = vec![false; g.node_count()];
    for &v in set {
        inset[v as usize] = true;
    }
    let mut act = vec![false; g.node_count()];
    for &v in active {
        act[v as usize] = true;
    }
    if set.iter().any(|&v| !act[v as usize]) {
        return false;
    }
    if !is_independent_set(g, set) {
        return false;
    }
    active
        .iter()
        .all(|&v| inset[v as usize] || g.neighbors_slice(v).iter().any(|&w| inset[w as usize]))
}

/// Exact `EM_m(G)`: the expected size of the greedy maximal independent
/// set over a uniformly random length-`m` permutation prefix, computed
/// by enumerating **all** `n!` permutations.
///
/// Only feasible for tiny graphs (`n ≤ 10`); used as the ground-truth
/// oracle for Monte-Carlo estimators.
///
/// # Panics
/// Panics if `m > n` or `n > 12` (12! ≈ 4.8e8 would already take
/// minutes; the cap keeps test suites fast and honest).
pub fn exact_em_m(g: &CsrGraph, m: usize) -> f64 {
    let n = g.node_count();
    assert!(m <= n, "prefix length {m} exceeds node count {n}");
    assert!(n <= 12, "exact enumeration capped at n = 12, got {n}");
    if m == 0 {
        return 0.0;
    }
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    let mut total: u64 = 0;
    let mut count: u64 = 0;
    permute(&mut perm, 0, &mut |p| {
        total += greedy_prefix_mis(g, &p[..m]).len() as u64;
        count += 1;
    });
    total as f64 / count as f64
}

/// Exact expected *aborts* `k̄(m) = m − EM_m(G)` by full enumeration
/// (same caveats as [`exact_em_m`]).
pub fn exact_kbar(g: &CsrGraph, m: usize) -> f64 {
    m as f64 - exact_em_m(g, m)
}

/// Heap's algorithm, calling `f` on every permutation of `v`.
fn permute<F: FnMut(&[NodeId])>(v: &mut [NodeId], k: usize, f: &mut F) {
    let n = v.len();
    if k == n {
        f(v);
        return;
    }
    for i in k..n {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn greedy_prefix_respects_order() {
        let g = path4();
        // Order 1, 0, 2, 3: 1 commits; 0 and 2 conflict with 1; 3 commits.
        assert_eq!(greedy_prefix_mis(&g, &[1, 0, 2, 3]), vec![1, 3]);
        // Order 0, 3, 1, 2: 0, 3 commit; 1 conflicts 0; 2 conflicts 3.
        assert_eq!(greedy_prefix_mis(&g, &[0, 3, 1, 2]), vec![0, 3]);
        // The "abort unblocks a later node" case of §2.1: 0 commits,
        // 1 aborts (neighbour 0 committed), then 2 can still commit
        // because its only conflicting predecessor 1 *aborted*.
        assert_eq!(greedy_prefix_mis(&g, &[0, 1, 2]), vec![0, 2]);
    }

    #[test]
    fn eager_is_stricter_than_greedy() {
        let g = path4();
        // Eager: 0 survives; 1, 2, 3 each have a *preceding* neighbour
        // in the prefix (whether or not that neighbour survived), so
        // all are excluded.
        assert_eq!(eager_prefix_is(&g, &[0, 1, 2, 3]), vec![0]);
        // With order 0, 2, 1, 3: node 2 has no preceding neighbour
        // (1 comes later), 3's neighbour 2 precedes it.
        assert_eq!(eager_prefix_is(&g, &[0, 2, 1, 3]), vec![0, 2]);
        assert_eq!(greedy_prefix_mis(&g, &[0, 1, 2, 3]), vec![0, 2]);
    }

    #[test]
    fn eager_never_larger_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::gnm(40, 120, &mut rng);
        for _ in 0..200 {
            let mut perm: Vec<NodeId> = (0..40).collect();
            perm.shuffle(&mut rng);
            let m = rng.random_range(1..=40);
            let eager = eager_prefix_is(&g, &perm[..m]);
            let greedy = greedy_prefix_mis(&g, &perm[..m]);
            assert!(eager.len() <= greedy.len());
            assert!(is_independent_set(&g, &eager));
            assert!(is_maximal_in_induced(&g, &perm[..m], &greedy));
        }
    }

    #[test]
    fn whole_graph_mis_is_maximal() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let g = gen::gnm(30, 60, &mut rng);
            let s = greedy_random_mis(&g, &mut rng);
            assert!(is_maximal_independent_set(&g, &s));
        }
    }

    #[test]
    fn turan_bound_on_average() {
        // E[|MIS|] >= n/(d+1); check empirically with margin.
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnm(100, 250, &mut rng); // d = 5
        let trials = 400;
        let total: usize = (0..trials)
            .map(|_| greedy_random_mis(&g, &mut rng).len())
            .sum();
        let mean = total as f64 / trials as f64;
        let bound = 100.0 / (g.average_degree() + 1.0);
        assert!(
            mean >= bound * 0.98,
            "mean {mean} below Turán bound {bound}"
        );
    }

    #[test]
    fn independence_checkers() {
        let g = path4();
        assert!(is_independent_set(&g, &[0, 2]));
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(is_maximal_independent_set(&g, &[1, 3]));
        assert!(!is_maximal_independent_set(&g, &[0])); // 2 or 3 addable
        assert!(is_independent_set(&g, &[])); // empty set independent
        assert!(!is_maximal_independent_set(&g, &[])); // but not maximal
    }

    #[test]
    fn induced_maximality() {
        let g = path4();
        // Active {0, 2}: both commit (not adjacent), maximal in induced.
        assert!(is_maximal_in_induced(&g, &[0, 2], &[0, 2]));
        // {0} is not maximal within active {0, 2}.
        assert!(!is_maximal_in_induced(&g, &[0, 2], &[0]));
        // A set outside active is invalid.
        assert!(!is_maximal_in_induced(&g, &[0], &[3]));
    }

    #[test]
    fn exact_em_on_triangle() {
        // K_3: any prefix commits exactly 1 node for m >= 1.
        let g = gen::complete(3);
        assert!((exact_em_m(&g, 1) - 1.0).abs() < 1e-12);
        assert!((exact_em_m(&g, 2) - 1.0).abs() < 1e-12);
        assert!((exact_em_m(&g, 3) - 1.0).abs() < 1e-12);
        assert!((exact_kbar(&g, 3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_em_on_edgeless() {
        let g = CsrGraph::edgeless(5);
        for m in 0..=5 {
            assert!((exact_em_m(&g, m) - m as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_em_on_single_edge() {
        // n = 2 with one edge: m = 2 always commits exactly one.
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        assert!((exact_em_m(&g, 2) - 1.0).abs() < 1e-12);
        // m = 1 commits one node always.
        assert!((exact_em_m(&g, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_em_path3_m2() {
        // Path 0-1-2, m = 2. Pairs (unordered, each with both orders):
        // {0,1}: adjacent -> 1 commit; {1,2}: adjacent -> 1; {0,2}: 2.
        // Each unordered pair equally likely -> E = (1+1+2)/3.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!((exact_em_m(&g, 2) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_prop2_slope() {
        // Prop. 2: k̄(2) = d / (n - 1), so EM_2 = 2 - d/(n-1).
        let g = gen::clique_union(8, 3);
        let d = g.average_degree();
        let n = g.node_count() as f64;
        assert!((exact_em_m(&g, 2) - (2.0 - d / (n - 1.0))).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn exact_em_refuses_big_graphs() {
        let g = CsrGraph::edgeless(13);
        let _ = exact_em_m(&g, 1);
    }
}

//! Degree statistics and graph summaries.
//!
//! The controller's smart initialisation and every bound in §3 of the
//! paper are driven by the average degree `d`; this module provides it
//! together with the fuller degree profile used in experiment reports.

use crate::{ConflictGraph, NodeId};

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of (live) nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Average degree `d = 2m/n` (0 for the empty graph).
    pub mean: f64,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Population variance of the degree sequence.
    pub variance: f64,
    /// Median of the degree sequence (lower median for even n).
    pub median: usize,
}

/// Compute [`DegreeStats`] for any conflict graph.
pub fn degree_stats<G: ConflictGraph + ?Sized>(g: &G) -> DegreeStats {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let n = nodes.len();
    if n == 0 {
        return DegreeStats {
            nodes: 0,
            edges: 0,
            mean: 0.0,
            min: 0,
            max: 0,
            variance: 0.0,
            median: 0,
        };
    }
    let mut degs: Vec<usize> = nodes.iter().map(|&v| g.degree(v)).collect();
    degs.sort_unstable();
    let mean = degs.iter().sum::<usize>() as f64 / n as f64;
    let variance = degs
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / n as f64;
    DegreeStats {
        nodes: n,
        edges: g.edge_count(),
        mean,
        min: degs[0],
        max: degs[n - 1],
        variance,
        median: degs[(n - 1) / 2],
    }
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram<G: ConflictGraph + ?Sized>(g: &G) -> Vec<usize> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let maxd = nodes.iter().map(|&v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; maxd + 1];
    for &v in &nodes {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::{AdjGraph, CsrGraph};

    #[test]
    fn stats_on_regular_graph() {
        let g = gen::clique_union(20, 4);
        let s = degree_stats(&g);
        assert_eq!(s.nodes, 20);
        assert_eq!(s.edges, 40);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 4);
    }

    #[test]
    fn stats_on_star() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert_eq!(s.median, 1);
        assert!(s.variance > 0.0);
    }

    #[test]
    fn stats_on_empty() {
        let g = CsrGraph::edgeless(0);
        let s = degree_stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
    }

    #[test]
    fn works_on_adj_graph_with_dead_nodes() {
        let mut g = AdjGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.remove_node(3);
        let s = degree_stats(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 1);
        assert_eq!(s.min, 0); // node 2 lost its only edge
    }
}

//! Immutable compressed-sparse-row (CSR) graph.
//!
//! This is the workhorse representation for everything analytical in
//! the workspace: conflict-ratio estimation, independent-set sampling,
//! and the theory-validation experiments. It is compact (two flat
//! arrays), cache-friendly for neighbour scans, and cheap to clone by
//! `Arc` upstream.

use crate::{ConflictGraph, NodeId};

/// An immutable undirected graph in compressed-sparse-row form.
///
/// Neighbour lists are sorted, enabling `O(log d)` adjacency tests via
/// binary search. Self-loops and parallel edges are rejected at
/// construction.
///
/// # Examples
/// ```
/// use optpar_graph::{CsrGraph, ConflictGraph};
///
/// // A triangle plus a pendant vertex: 0-1, 1-2, 2-0, 2-3.
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.degree(2), 3);
/// assert!(g.has_edge(0, 2));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted neighbour lists.
    targets: Vec<NodeId>,
    /// Number of undirected edges.
    edges: usize,
}

impl CsrGraph {
    /// Build a graph with `n` nodes from an undirected edge list.
    ///
    /// Duplicate edges (in either orientation) are collapsed;
    /// self-loops are dropped. Endpoints must be `< n`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut canon: Vec<(NodeId, NodeId)> = edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        for &(u, v) in &canon {
            assert!(
                (v as usize) < n,
                "edge ({u}, {v}) out of range for {n} nodes"
            );
        }
        canon.sort_unstable();
        canon.dedup();
        Self::from_sorted_unique_edges(n, &canon)
    }

    /// Build from edges already canonicalized (`u < v`), sorted, and
    /// unique. This is the fast path used by the generators.
    pub(crate) fn from_sorted_unique_edges(n: usize, canon: &[(NodeId, NodeId)]) -> Self {
        debug_assert!(canon.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(canon.iter().all(|&(u, v)| u < v && (v as usize) < n));
        let mut deg = vec![0u32; n];
        for &(u, v) in canon {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; acc as usize];
        for &(u, v) in canon {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Each node's slice is filled in ascending order of the other
        // endpoint only for the `u` side; sort every slice to restore
        // the invariant cheaply (slices are typically short).
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[s..e].sort_unstable();
        }
        CsrGraph {
            offsets,
            targets,
            edges: canon.len(),
        }
    }

    /// An edgeless graph on `n` nodes (`D_n` in the paper's Example 1).
    pub fn edgeless(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            edges: 0,
        }
    }

    /// The neighbour slice of `v`, sorted ascending.
    #[inline]
    pub fn neighbors_slice(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Disjoint union: nodes of `other` are relabelled by `+self.n`.
    ///
    /// Used to assemble the paper's composite families such as
    /// `K_{n²} ∪ D_n` (Example 1) and "cliques plus isolated nodes"
    /// (Fig. 2 iii).
    pub fn disjoint_union(&self, other: &CsrGraph) -> CsrGraph {
        let n1 = self.node_count() as u32;
        let n = (n1 as usize) + other.node_count();
        let mut canon: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.edges + other.edges);
        for v in 0..n1 {
            for &w in self.neighbors_slice(v) {
                if v < w {
                    canon.push((v, w));
                }
            }
        }
        for v in 0..other.node_count() as u32 {
            for &w in other.neighbors_slice(v) {
                if v < w {
                    canon.push((v + n1, w + n1));
                }
            }
        }
        canon.sort_unstable();
        CsrGraph::from_sorted_unique_edges(n, &canon)
    }

    /// Export all edges in canonical `(u, v)` with `u < v` order.
    pub fn edge_list(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edges);
        for v in 0..self.node_count() as u32 {
            for &w in self.neighbors_slice(v) {
                if v < w {
                    out.push((v, w));
                }
            }
        }
        out
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Number of connected components (iterative DFS).
    pub fn connected_components(&self) -> usize {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut stack = Vec::new();
        let mut comps = 0;
        for s in 0..n {
            if seen[s] {
                continue;
            }
            comps += 1;
            seen[s] = true;
            stack.push(s as NodeId);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors_slice(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
        }
        comps
    }
}

impl ConflictGraph for CsrGraph {
    fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn nodes(&self) -> Box<dyn Iterator<Item = NodeId> + '_> {
        Box::new(0..self.node_count() as NodeId)
    }

    fn neighbors(&self, v: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_> {
        Box::new(self.neighbors_slice(v).iter().copied())
    }

    fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors_slice(u).binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::edgeless(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.connected_components(), 0);
    }

    #[test]
    fn edgeless_graph_has_isolated_nodes() {
        let g = CsrGraph::edgeless(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.connected_components(), 5);
    }

    #[test]
    fn triangle_with_pendant() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors_slice(2), &[0, 1, 3]);
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(3, 0));
        assert_eq!(g.connected_components(), 1);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 1)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn self_loops_dropped() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn disjoint_union_relabels() {
        let tri = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let iso = CsrGraph::edgeless(2);
        let g = tri.disjoint_union(&iso);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.connected_components(), 3);

        let g2 = iso.disjoint_union(&tri);
        assert_eq!(g2.degree(0), 0);
        assert!(g2.has_edge(2, 3));
    }

    #[test]
    fn edge_list_round_trips() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)];
        let g = CsrGraph::from_edges(4, &edges);
        let el = g.edge_list();
        let g2 = CsrGraph::from_edges(4, &el);
        assert_eq!(g, g2);
    }

    #[test]
    fn nodes_iterator_covers_all() {
        let g = CsrGraph::edgeless(4);
        let v: Vec<_> = g.nodes().collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn max_degree() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(CsrGraph::edgeless(3).max_degree(), 0);
    }
}

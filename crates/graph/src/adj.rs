//! Mutable adjacency graph with node removal and insertion.
//!
//! The round-based CC-graph scheduler (optpar-core) removes a node
//! whenever its computation commits, and irregular algorithms *morph*
//! the graph — e.g. retriangulating a Delaunay cavity replaces a
//! handful of conflict nodes with new ones. [`AdjGraph`] supports both
//! at `O(d)` per operation while keeping `node_count`/`edge_count`
//! O(1).
//!
//! Node identifiers are stable: removing a node never renumbers the
//! others. Freed identifiers are recycled by [`AdjGraph::add_node`] in
//! LIFO order.

use crate::{ConflictGraph, CsrGraph, NodeId};

/// A mutable undirected graph with live/dead node tracking.
///
/// # Examples
/// ```
/// use optpar_graph::{AdjGraph, ConflictGraph};
///
/// let mut g = AdjGraph::with_nodes(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.degree(1), 2);
/// g.remove_node(1);
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.degree(0), 0);
/// let v = g.add_node(); // recycles id 1
/// assert_eq!(v, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AdjGraph {
    /// Sorted neighbour list per slot; meaningful only for live slots.
    adj: Vec<Vec<NodeId>>,
    /// Liveness per slot.
    alive: Vec<bool>,
    /// Free-list of dead slots, recycled LIFO.
    free: Vec<NodeId>,
    live_nodes: usize,
    edges: usize,
}

impl AdjGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A graph with `n` live, isolated nodes `0..n`.
    pub fn with_nodes(n: usize) -> Self {
        AdjGraph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            free: Vec::new(),
            live_nodes: n,
            edges: 0,
        }
    }

    /// Materialize a static [`CsrGraph`] into mutable form.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.node_count();
        let mut adj = Vec::with_capacity(n);
        for v in 0..n as NodeId {
            adj.push(g.neighbors_slice(v).to_vec());
        }
        AdjGraph {
            adj,
            alive: vec![true; n],
            free: Vec::new(),
            live_nodes: n,
            edges: g.edge_count(),
        }
    }

    /// Snapshot the live subgraph as a CSR graph.
    ///
    /// Node identifiers are *compacted*: live nodes are renumbered
    /// `0..live` in increasing id order. The mapping `old -> new` is
    /// returned alongside.
    pub fn to_csr_compact(&self) -> (CsrGraph, Vec<Option<NodeId>>) {
        let mut map = vec![None; self.adj.len()];
        let mut next = 0 as NodeId;
        for (v, &a) in self.alive.iter().enumerate() {
            if a {
                map[v] = Some(next);
                next += 1;
            }
        }
        let mut canon = Vec::with_capacity(self.edges);
        for (v, nbrs) in self.adj.iter().enumerate() {
            if !self.alive[v] {
                continue;
            }
            let nv = map[v].expect("live node must be mapped");
            for &w in nbrs {
                let nw = map[w as usize].expect("neighbour of live node must be live");
                if nv < nw {
                    canon.push((nv, nw));
                }
            }
        }
        canon.sort_unstable();
        (
            CsrGraph::from_sorted_unique_edges(next as usize, &canon),
            map,
        )
    }

    /// Total slots, live or dead. Valid node ids are `< capacity()`.
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Is `v` a live node?
    #[inline]
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive.get(v as usize).copied().unwrap_or(false)
    }

    /// Add a new isolated node, recycling a dead slot if available.
    pub fn add_node(&mut self) -> NodeId {
        self.live_nodes += 1;
        if let Some(v) = self.free.pop() {
            self.alive[v as usize] = true;
            debug_assert!(self.adj[v as usize].is_empty());
            v
        } else {
            let v = self.adj.len() as NodeId;
            self.adj.push(Vec::new());
            self.alive.push(true);
            v
        }
    }

    /// Add the undirected edge `{u, v}`. Returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if either endpoint is dead, or on a self-loop.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(self.is_alive(u), "endpoint {u} is not a live node");
        assert!(self.is_alive(v), "endpoint {v} is not a live node");
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(iu) => {
                let iv = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("adjacency must be symmetric");
                self.adj[u as usize].insert(iu, v);
                self.adj[v as usize].insert(iv, u);
                self.edges += 1;
                true
            }
        }
    }

    /// Remove the undirected edge `{u, v}`. Returns `true` if present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.is_alive(u) || !self.is_alive(v) {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(iu) => {
                let iv = self.adj[v as usize]
                    .binary_search(&u)
                    .expect("adjacency must be symmetric");
                self.adj[u as usize].remove(iu);
                self.adj[v as usize].remove(iv);
                self.edges -= 1;
                true
            }
        }
    }

    /// Remove node `v` and all incident edges.
    ///
    /// # Panics
    /// Panics if `v` is not live.
    pub fn remove_node(&mut self, v: NodeId) {
        assert!(self.is_alive(v), "node {v} is not live");
        let nbrs = std::mem::take(&mut self.adj[v as usize]);
        self.edges -= nbrs.len();
        for w in nbrs {
            let i = self.adj[w as usize]
                .binary_search(&v)
                .expect("adjacency must be symmetric");
            self.adj[w as usize].remove(i);
        }
        self.alive[v as usize] = false;
        self.free.push(v);
        self.live_nodes -= 1;
    }

    /// Sorted neighbour slice of a live node.
    #[inline]
    pub fn neighbors_slice(&self, v: NodeId) -> &[NodeId] {
        debug_assert!(self.is_alive(v));
        &self.adj[v as usize]
    }

    /// Collect all live node ids, ascending.
    pub fn live_nodes_vec(&self) -> Vec<NodeId> {
        self.nodes().collect()
    }

    /// Internal consistency check used by tests and debug assertions:
    /// symmetry, sortedness, liveness of all neighbours, and counter
    /// agreement.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut live = 0usize;
        let mut half_edges = 0usize;
        for (v, nbrs) in self.adj.iter().enumerate() {
            if !self.alive[v] {
                if !nbrs.is_empty() {
                    return Err(format!("dead node {v} has neighbours"));
                }
                continue;
            }
            live += 1;
            half_edges += nbrs.len();
            if nbrs.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("node {v} has unsorted/duplicate neighbours"));
            }
            for &w in nbrs {
                if w as usize == v {
                    return Err(format!("node {v} has a self-loop"));
                }
                if !self.is_alive(w) {
                    return Err(format!("node {v} adjacent to dead node {w}"));
                }
                if self.adj[w as usize].binary_search(&(v as NodeId)).is_err() {
                    return Err(format!("edge ({v}, {w}) is not symmetric"));
                }
            }
        }
        if live != self.live_nodes {
            return Err(format!("live counter {} != actual {live}", self.live_nodes));
        }
        if half_edges != 2 * self.edges {
            return Err(format!(
                "edge counter {} != actual {}",
                self.edges,
                half_edges / 2
            ));
        }
        Ok(())
    }
}

impl From<&CsrGraph> for AdjGraph {
    fn from(g: &CsrGraph) -> Self {
        AdjGraph::from_csr(g)
    }
}

impl From<CsrGraph> for AdjGraph {
    fn from(g: CsrGraph) -> Self {
        AdjGraph::from_csr(&g)
    }
}

impl ConflictGraph for AdjGraph {
    fn node_count(&self) -> usize {
        self.live_nodes
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn nodes(&self) -> Box<dyn Iterator<Item = NodeId> + '_> {
        Box::new(
            self.alive
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(v, _)| v as NodeId),
        )
    }

    fn neighbors(&self, v: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_> {
        Box::new(self.adj[v as usize].iter().copied())
    }

    fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.is_alive(u) && self.is_alive(v) && self.adj[u as usize].binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_remove() {
        let mut g = AdjGraph::with_nodes(4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(g.add_edge(2, 3));
        assert!(!g.add_edge(1, 0), "duplicate edge must be rejected");
        assert_eq!(g.edge_count(), 3);
        g.check_invariants().unwrap();

        g.remove_node(1);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        g.check_invariants().unwrap();
    }

    #[test]
    fn id_recycling_is_lifo() {
        let mut g = AdjGraph::with_nodes(3);
        g.remove_node(0);
        g.remove_node(2);
        assert_eq!(g.add_node(), 2);
        assert_eq!(g.add_node(), 0);
        assert_eq!(g.add_node(), 3);
        assert_eq!(g.node_count(), 4);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_edge() {
        let mut g = AdjGraph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "not a live node")]
    fn edge_to_dead_node_panics() {
        let mut g = AdjGraph::with_nodes(2);
        g.remove_node(1);
        g.add_edge(0, 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = AdjGraph::with_nodes(1);
        g.add_edge(0, 0);
    }

    #[test]
    fn csr_round_trip() {
        let csr = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let adj = AdjGraph::from_csr(&csr);
        assert_eq!(adj.node_count(), 5);
        assert_eq!(adj.edge_count(), 4);
        adj.check_invariants().unwrap();
        let (back, map) = adj.to_csr_compact();
        assert_eq!(back, csr);
        assert!(map.iter().all(|m| m.is_some()));
    }

    #[test]
    fn compaction_renumbers_after_removal() {
        let csr = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut adj = AdjGraph::from_csr(&csr);
        adj.remove_node(1);
        let (c, map) = adj.to_csr_compact();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.edge_count(), 1);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[1], None);
        assert_eq!(map[2], Some(1));
        assert_eq!(map[3], Some(2));
        assert!(c.has_edge(1, 2)); // old (2,3)
    }

    #[test]
    fn morphing_scenario() {
        // Simulate a cavity retriangulation: remove a node, add two new
        // conflicting nodes wired to the old neighbourhood.
        let mut g = AdjGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        let nbrs: Vec<_> = g.neighbors_slice(0).to_vec();
        g.remove_node(0);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        for w in nbrs {
            g.add_edge(a, w);
            g.add_edge(b, w);
        }
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 7);
        g.check_invariants().unwrap();
    }

    #[test]
    fn average_degree_tracks_removals() {
        let mut g = AdjGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
        g.remove_node(3);
        assert!((g.average_degree() - 2.0 / 3.0).abs() < 1e-12);
    }
}

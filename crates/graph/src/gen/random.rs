//! Uniform random graph generators.

use crate::{CsrGraph, NodeId};
use rand::Rng;
use std::collections::HashSet;

/// Uniform random graph `G(n, m)`: exactly `m` distinct edges chosen
/// uniformly among all `n(n-1)/2` possible edges.
///
/// This matches the paper's Fig. 2 construction: "edges chosen
/// uniformly at random until desired degree is reached".
///
/// Uses rejection sampling, which is efficient while
/// `m ≲ 0.4 · n(n-1)/2`; for denser requests it falls back to sampling
/// the complement.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    let max = n.saturating_sub(1) * n / 2;
    assert!(
        m <= max,
        "requested {m} edges but K_{n} has only {max} edges"
    );
    if m == 0 {
        return CsrGraph::edgeless(n);
    }
    // Dense request: choose which edges to *exclude* instead.
    if m * 2 > max {
        let excluded = sample_edge_set(n, max - m, rng);
        let mut canon = Vec::with_capacity(m);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if !excluded.contains(&(u, v)) {
                    canon.push((u, v));
                }
            }
        }
        return CsrGraph::from_sorted_unique_edges(n, &canon);
    }
    let set = sample_edge_set(n, m, rng);
    let mut canon: Vec<(NodeId, NodeId)> = set.into_iter().collect();
    canon.sort_unstable();
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

/// Sample `m` distinct canonical edges of `K_n` by rejection.
fn sample_edge_set<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> HashSet<(NodeId, NodeId)> {
    let mut set = HashSet::with_capacity(m);
    while set.len() < m {
        let u = rng.random_range(0..n as NodeId);
        let v = rng.random_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        set.insert(e);
    }
    set
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` edges present
/// independently with probability `p`.
///
/// Uses geometric skipping so the cost is `O(n + m)` rather than
/// `O(n²)` for sparse `p`.
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
    if n < 2 || p == 0.0 {
        return CsrGraph::edgeless(n);
    }
    let total = n * (n - 1) / 2;
    let mut canon = Vec::new();
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                canon.push((u, v));
            }
        }
        return CsrGraph::from_sorted_unique_edges(n, &canon);
    }
    // Skip-sampling over the linearized strict upper-triangular index.
    let log1mp = (1.0 - p).ln();
    let mut idx: usize = 0;
    loop {
        let u: f64 = rng.random();
        // Geometric(p) gap; `1 - u` avoids ln(0).
        let gap = ((1.0 - u).ln() / log1mp).floor() as usize + 1;
        idx = match idx.checked_add(gap) {
            Some(i) => i,
            None => break,
        };
        if idx > total {
            break;
        }
        canon.push(unrank_edge(n, idx - 1));
    }
    canon.sort_unstable();
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

/// Map a linear index in `0..n(n-1)/2` to the canonical edge it ranks,
/// enumerating row-by-row: (0,1), (0,2), …, (0,n-1), (1,2), ….
fn unrank_edge(n: usize, mut idx: usize) -> (NodeId, NodeId) {
    let mut u = 0usize;
    loop {
        let row = n - 1 - u;
        if idx < row {
            return (u as NodeId, (u + 1 + idx) as NodeId);
        }
        idx -= row;
        u += 1;
    }
}

/// Random graph with a target *average degree* `d`: `G(n, m)` with
/// `m = round(n·d / 2)`.
///
/// This is the parameterization the paper uses throughout ("a random
/// CC graph of fixed average degree d", §4.1).
pub fn random_with_avg_degree<R: Rng + ?Sized>(n: usize, d: f64, rng: &mut R) -> CsrGraph {
    assert!(d >= 0.0, "average degree must be non-negative");
    let m = (n as f64 * d / 2.0).round() as usize;
    gnm(n, m, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, m) in &[(10, 0), (10, 45), (50, 100), (4, 3)] {
            let g = gnm(n, m, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), m);
        }
    }

    #[test]
    fn gnm_dense_path() {
        let mut rng = StdRng::seed_from_u64(2);
        // m > max/2 triggers the complement path.
        let g = gnm(20, 180, &mut rng);
        assert_eq!(g.edge_count(), 180);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn gnm_too_many_edges_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = gnm(4, 7, &mut rng);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(gnp(30, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(30, 1.0, &mut rng).edge_count(), 435);
        assert_eq!(gnp(1, 0.5, &mut rng).edge_count(), 0);
        assert_eq!(gnp(0, 0.5, &mut rng).node_count(), 0);
    }

    #[test]
    fn gnp_mean_close_to_expectation() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200;
        let p = 0.1;
        let trials = 30;
        let total: usize = (0..trials).map(|_| gnp(n, p, &mut rng).edge_count()).sum();
        let mean = total as f64 / trials as f64;
        let expect = p * (n * (n - 1) / 2) as f64;
        // stderr of the mean ≈ sqrt(E·(1-p)/trials) ≈ 7.7; allow 5 sigma.
        assert!(
            (mean - expect).abs() < 5.0 * (expect * (1.0 - p) / trials as f64).sqrt(),
            "mean {mean} too far from {expect}"
        );
    }

    #[test]
    fn unrank_covers_all_edges() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n * (n - 1) / 2 {
            let (u, v) = unrank_edge(n, i);
            assert!(u < v && (v as usize) < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 21);
    }

    #[test]
    fn avg_degree_parameterization() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = random_with_avg_degree(2000, 16.0, &mut rng);
        assert_eq!(g.edge_count(), 16000);
        assert!((g.average_degree() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn gnm_is_plausibly_uniform() {
        // On K_3 with m=1 each edge should appear ~1/3 of the time.
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let g = gnm(3, 1, &mut rng);
            let e = g.edge_list()[0];
            let i = match e {
                (0, 1) => 0,
                (0, 2) => 1,
                (1, 2) => 2,
                _ => unreachable!(),
            };
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?} not uniform");
        }
    }
}

//! Mesh-like graphs: the unfriendly-seating setting.
//!
//! The unfriendly seating problem (Freedman & Shepp; Georgiou, Kranakis
//! & Krizanc) — which the paper connects to its parallelism bound — is
//! usually studied on grid-like graphs; these generators provide that
//! family, and they also approximate the conflict structure of mesh
//! refinement workloads.

use crate::{CsrGraph, NodeId};

/// `rows × cols` 4-neighbour grid (open boundary).
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut canon = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                canon.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                canon.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    canon.sort_unstable();
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

/// `rows × cols` 4-neighbour torus (wrap-around boundary).
///
/// Degenerate dimensions (1 or 2) would create self-loops or duplicate
/// edges from wrapping; those wrap edges are skipped, so `torus(1, k)`
/// degrades gracefully to a cycle/path-like graph.
pub fn torus(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if cols > 1 && !(cols == 2 && c == 1) {
                edges.push((id(r, c), id(r, (c + 1) % cols)));
            }
            if rows > 1 && !(rows == 2 && r == 1) {
                edges.push((id(r, c), id((r + 1) % rows, c)));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // Horizontal: 3·3 = 9, vertical: 2·4 = 8.
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // edge
        assert_eq!(g.degree(5), 4); // interior
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn grid_degenerate() {
        assert_eq!(grid(1, 5).edge_count(), 4); // a path
        assert_eq!(grid(1, 1).edge_count(), 0);
        assert_eq!(grid(0, 9).node_count(), 0);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 40);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn torus_degenerate_dims() {
        // 1×k torus: just a cycle over k (no vertical edges).
        let g = torus(1, 5);
        assert_eq!(g.edge_count(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
        // 2×2: each wrap would duplicate; behaves like a 4-cycle.
        let g = torus(2, 2);
        assert_eq!(g.edge_count(), 4);
    }
}

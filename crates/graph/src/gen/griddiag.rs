//! Grids with diagonals (Moore neighbourhoods) in two and three
//! dimensions.
//!
//! The 4-neighbour [`grid`](super::grid) keeps conflict footprints
//! minimal; mesh-refinement and stencil workloads conflict across
//! diagonals too. These generators connect every pair of cells at
//! Chebyshev distance 1 — degree ≤ 8 in 2-D, ≤ 26 in 3-D — and are
//! fully deterministic, so they make reproducible million-node inputs
//! whose partition structure (BFS-grown blocks) is near-ideal.

use crate::{CsrGraph, NodeId};

/// `rows × cols` 8-neighbour grid (king-move adjacency, open
/// boundary): the 4-neighbour grid plus both diagonals.
pub fn grid2d_diag(rows: usize, cols: usize) -> CsrGraph {
    let n = rows
        .checked_mul(cols)
        .expect("grid node count overflows usize");
    assert!(n <= u32::MAX as usize, "grid too large for u32 node ids");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut canon = Vec::with_capacity(4 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                canon.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                if c > 0 {
                    canon.push((id(r, c), id(r + 1, c - 1)));
                }
                canon.push((id(r, c), id(r + 1, c)));
                if c + 1 < cols {
                    canon.push((id(r, c), id(r + 1, c + 1)));
                }
            }
        }
    }
    canon.sort_unstable();
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

/// `nx × ny × nz` 26-neighbour grid (3-D Moore neighbourhood, open
/// boundary). Node `(x, y, z)` has id `(z·ny + y)·nx + x`.
pub fn grid3d_diag(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    let n = nx
        .checked_mul(ny)
        .and_then(|p| p.checked_mul(nz))
        .expect("grid node count overflows usize");
    assert!(n <= u32::MAX as usize, "grid too large for u32 node ids");
    let id = |x: usize, y: usize, z: usize| ((z * ny + y) * nx + x) as NodeId;
    // The 13 deltas with lexicographically positive (dz, dy, dx) cover
    // each unordered Chebyshev-1 pair exactly once.
    let mut deltas = Vec::with_capacity(13);
    for dz in 0..=1i64 {
        for dy in -1..=1i64 {
            for dx in -1..=1i64 {
                if (dz, dy, dx) > (0, 0, 0) {
                    deltas.push((dx, dy, dz));
                }
            }
        }
    }
    let mut canon = Vec::with_capacity(13 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                for &(dx, dy, dz) in &deltas {
                    let (tx, ty, tz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if tx < 0 || ty < 0 || tz < 0 {
                        continue;
                    }
                    let (tx, ty, tz) = (tx as usize, ty as usize, tz as usize);
                    if tx >= nx || ty >= ny || tz >= nz {
                        continue;
                    }
                    canon.push((id(x, y, z), id(tx, ty, tz)));
                }
            }
        }
    }
    canon.sort_unstable();
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;

    #[test]
    fn grid2d_counts_and_degrees() {
        let g = grid2d_diag(4, 5);
        assert_eq!(g.node_count(), 20);
        // Horizontal 4·4 + vertical 3·5 + 2 diagonal families 3·4 each.
        assert_eq!(g.edge_count(), 16 + 15 + 12 + 12);
        assert_eq!(g.degree(0), 3); // corner
        assert_eq!(g.degree(1), 5); // boundary
        assert_eq!(g.degree(6), 8); // interior
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn grid2d_degenerate() {
        assert_eq!(grid2d_diag(1, 6).edge_count(), 5); // path: no diagonals
        assert_eq!(grid2d_diag(0, 9).node_count(), 0);
        // 2×2 with diagonals is K4.
        assert_eq!(grid2d_diag(2, 2).edge_count(), 6);
    }

    #[test]
    fn grid3d_counts_and_degrees() {
        let g = grid3d_diag(3, 3, 3);
        assert_eq!(g.node_count(), 27);
        assert_eq!(g.degree(13), 26); // centre sees everything
        for v in 0..27 {
            assert!(g.degree(v) >= 7); // corners see their 2×2×2 block
        }
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn grid3d_flat_is_grid2d() {
        // A 1-deep 3-D grid must equal the 2-D Moore grid.
        assert_eq!(grid3d_diag(5, 4, 1), grid2d_diag(4, 5));
    }
}

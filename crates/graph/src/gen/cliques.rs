//! Clique-based families: the paper's worst cases and counterexamples.

use crate::{CsrGraph, NodeId};

/// The complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut canon = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            canon.push((u, v));
        }
    }
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

/// The paper's worst-case graph `K_d^n`: the disjoint union of
/// `s = n / (d+1)` cliques, each of size `d + 1` (Remark 2, Thms. 2–3).
///
/// Every node has degree exactly `d`, the average degree is `d`, and
/// every maximal independent set has size exactly `s`.
///
/// # Panics
/// Panics unless `d + 1` divides `n` (the paper's simplifying
/// assumption `n/(d+1) ∈ ℕ`).
pub fn clique_union(n: usize, d: usize) -> CsrGraph {
    assert!(
        n.is_multiple_of(d + 1),
        "K_d^n requires (d+1) | n; got n = {n}, d = {d}"
    );
    let k = d + 1;
    let mut canon = Vec::with_capacity(n / k * (k * (k - 1) / 2));
    for c in 0..(n / k) {
        let base = (c * k) as NodeId;
        for i in 0..k as NodeId {
            for j in (i + 1)..k as NodeId {
                canon.push((base + i, base + j));
            }
        }
    }
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

/// A union of `num_cliques` cliques of size `clique_size` plus
/// `isolated` disconnected nodes — the third family plotted in Fig. 2
/// ("a graph unions of cliques and disconnected nodes").
///
/// Clique nodes come first (`0 .. num_cliques·clique_size`), isolated
/// nodes last.
pub fn cliques_plus_isolated(num_cliques: usize, clique_size: usize, isolated: usize) -> CsrGraph {
    let nc = num_cliques * clique_size;
    let n = nc + isolated;
    let mut canon =
        Vec::with_capacity(num_cliques * clique_size * clique_size.saturating_sub(1) / 2);
    for c in 0..num_cliques {
        let base = (c * clique_size) as NodeId;
        for i in 0..clique_size as NodeId {
            for j in (i + 1)..clique_size as NodeId {
                canon.push((base + i, base + j));
            }
        }
    }
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

/// Example 1's "clique trap": `G = K_{n²} ∪ D_n`, a clique of size `n²`
/// together with `n` isolated nodes.
///
/// Every maximal independent set has size `n + 1` (one clique node plus
/// all isolated nodes), yet launching `n + 1` uniformly random nodes
/// yields on average only ≈ 2 commits — the motivating example for why
/// expected-MIS size over-predicts exploitable parallelism.
///
/// Clique nodes are `0 .. n²`; isolated nodes are `n² .. n² + n`.
pub fn clique_trap(n: usize) -> CsrGraph {
    cliques_plus_isolated(1, n * n, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis;
    use crate::ConflictGraph;

    #[test]
    fn complete_graph() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.connected_components(), 1);
        assert_eq!(complete(0).node_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn clique_union_structure() {
        // K_4^20: s = 20/5 = 4 components, each a K_5.
        let g = clique_union(20, 4);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 10);
        assert_eq!(g.connected_components(), 4);
        assert!((g.average_degree() - 4.0).abs() < 1e-12);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4, "K_d^n must be d-regular");
        }
    }

    #[test]
    fn clique_union_d_zero_is_edgeless() {
        let g = clique_union(10, 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.connected_components(), 10);
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn clique_union_indivisible_panics() {
        let _ = clique_union(10, 2);
    }

    #[test]
    fn cliques_plus_isolated_structure() {
        let g = cliques_plus_isolated(3, 4, 7);
        assert_eq!(g.node_count(), 19);
        assert_eq!(g.edge_count(), 3 * 6);
        assert_eq!(g.connected_components(), 3 + 7);
        for v in 12..19 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn clique_trap_mis_size() {
        // For K_{n²} ∪ D_n every maximal IS has size exactly n + 1.
        let n = 4;
        let g = clique_trap(n);
        assert_eq!(g.node_count(), n * n + n);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let s = mis::greedy_random_mis(&g, &mut rng);
            assert_eq!(s.len(), n + 1);
            assert!(mis::is_independent_set(&g, &s));
            assert!(mis::is_maximal_independent_set(&g, &s));
        }
    }
}

//! Road-network-like graphs: a jittered local mesh plus multi-level
//! highway shortcuts.
//!
//! Real road networks are almost planar with degree ≈ 2–4, but carry a
//! hierarchy of progressively sparser long-range links (arterials,
//! highways) that collapse the diameter. This generator reproduces
//! that shape deterministically in O(n): nodes sit on a √n × √n street
//! grid whose local edges are randomly thinned (dead ends, irregular
//! blocks), and every level-ℓ junction (grid positions divisible by
//! 4^ℓ) gains shortcut edges spanning 4^ℓ blocks.

use crate::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Road-network-like graph on `n` nodes. Same `(n, seed)` ⇒
/// byte-identical CSR.
///
/// Nodes are laid out row-major on a `side × side` grid with
/// `side = ⌈√n⌉`; ids ≥ `n` simply don't exist, so the last row may be
/// ragged. Local street edges (right/down, occasionally diagonal) are
/// kept with fixed probabilities; the highway hierarchy is
/// deterministic in the layout.
pub fn road_like(n: usize, seed: u64) -> CsrGraph {
    assert!(n <= u32::MAX as usize, "too many nodes for u32 node ids");
    if n == 0 {
        return CsrGraph::edgeless(0);
    }
    let side = (n as f64).sqrt().ceil() as usize;
    let id = |r: usize, c: usize| r * side + c;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut canon: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * n + n / 4);
    let push = |canon: &mut Vec<(NodeId, NodeId)>, a: usize, b: usize| {
        if a < n && b < n {
            let (a, b) = (a as NodeId, b as NodeId);
            canon.push(if a < b { (a, b) } else { (b, a) });
        }
    };
    // Local streets. The RNG is consumed in a fixed per-node order so
    // the build is reproducible regardless of which edges survive.
    for r in 0..side {
        for c in 0..side {
            let u = id(r, c);
            if u >= n {
                continue;
            }
            let (keep_right, keep_down, diag): (f64, f64, f64) =
                (rng.random(), rng.random(), rng.random());
            if c + 1 < side && keep_right < 0.92 {
                push(&mut canon, u, id(r, c + 1));
            }
            if r + 1 < side && keep_down < 0.92 {
                push(&mut canon, u, id(r + 1, c));
            }
            if r + 1 < side && c + 1 < side && diag < 0.15 {
                push(&mut canon, u, id(r + 1, c + 1));
            }
        }
    }
    // Highway hierarchy: level-ℓ junctions every 4^ℓ blocks, linked to
    // the next junction right and down at the same level.
    let mut step = 4usize;
    while step < side {
        for r in (0..side).step_by(step) {
            for c in (0..side).step_by(step) {
                if c + step < side {
                    push(&mut canon, id(r, c), id(r, c + step));
                }
                if r + step < side {
                    push(&mut canon, id(r, c), id(r + step, c));
                }
            }
        }
        step *= 4;
    }
    canon.sort_unstable();
    canon.dedup();
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;

    #[test]
    fn seed_determinism() {
        assert_eq!(road_like(5000, 3), road_like(5000, 3));
        assert_ne!(road_like(5000, 3), road_like(5000, 4));
    }

    #[test]
    fn road_shape() {
        let g = road_like(10_000, 1);
        assert_eq!(g.node_count(), 10_000);
        // Street-grid density: ≈ 2·0.92 + 0.15 surviving edges per
        // node, i.e. average degree ≈ 4, plus a sliver of highways.
        let avg = g.average_degree();
        assert!((3.5..=4.6).contains(&avg), "avg degree {avg}");
        // The hierarchy makes junction hubs but no power-law monsters:
        // streets cap degree at 8, each highway level adds ≤ 4.
        let max = g.max_degree();
        assert!(max > 6 && max <= 24, "max degree {max}");
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(road_like(0, 9).node_count(), 0);
        assert_eq!(road_like(1, 9).edge_count(), 0);
        let g = road_like(7, 9); // ragged last row
        assert_eq!(g.node_count(), 7);
    }
}

//! Random geometric graphs: points in the unit square, edges within a
//! radius.
//!
//! The conflict structure of mesh-refinement and clustering workloads
//! is *spatial* — tasks conflict when their geometric footprints
//! overlap — and the random geometric graph is its standard abstract
//! model, complementing the structureless `G(n, m)` family in the
//! controller experiments.

use crate::{CsrGraph, NodeId};
use rand::Rng;

/// Random geometric graph: `n` points uniform in the unit square,
/// an edge between every pair at Euclidean distance ≤ `radius`.
///
/// Built with a uniform grid of cell size `radius`, so construction is
/// `O(n + m)` in expectation rather than `O(n²)`.
pub fn geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> CsrGraph {
    assert!(radius >= 0.0, "radius must be non-negative");
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    geometric_from_points(&pts, radius)
}

/// The radius giving expected average degree `d` for `n` uniform
/// points (`d ≈ n·π·r²` away from the boundary).
pub fn radius_for_degree(n: usize, d: f64) -> f64 {
    assert!(n >= 2 && d >= 0.0);
    (d / (n as f64 * std::f64::consts::PI)).sqrt()
}

/// Build the geometric graph of explicit points (unit-square
/// coordinates assumed but not required — the grid adapts).
pub fn geometric_from_points(pts: &[(f64, f64)], radius: f64) -> CsrGraph {
    let n = pts.len();
    if n == 0 || radius <= 0.0 {
        return CsrGraph::edgeless(n);
    }
    // Grid bucketing by cell = radius.
    let cells = (1.0 / radius).ceil().max(1.0) as i64;
    let cell_of = |x: f64, y: f64| -> (i64, i64) {
        (
            ((x * cells as f64) as i64).clamp(0, cells - 1),
            ((y * cells as f64) as i64).clamp(0, cells - 1),
        )
    };
    use std::collections::HashMap;
    let mut grid: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        grid.entry(cell_of(x, y)).or_default().push(i as u32);
    }
    let r2 = radius * radius;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (&(cx, cy), members) in &grid {
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                let Some(other) = grid.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &a in members {
                    for &b in other {
                        if a < b {
                            let (ax, ay) = pts[a as usize];
                            let (bx, by) = pts[b as usize];
                            let (ddx, ddy) = (ax - bx, ay - by);
                            if ddx * ddx + ddy * ddy <= r2 {
                                edges.push((a, b));
                            }
                        }
                    }
                }
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn brute_force_agreement() {
        // Grid construction must equal the O(n²) definition.
        let mut rng = StdRng::seed_from_u64(1);
        let pts: Vec<(f64, f64)> = (0..80)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let r = 0.17;
        let fast = geometric_from_points(&pts, r);
        let mut brute = Vec::new();
        for i in 0..pts.len() as u32 {
            for j in (i + 1)..pts.len() as u32 {
                let (ax, ay) = pts[i as usize];
                let (bx, by) = pts[j as usize];
                if (ax - bx).powi(2) + (ay - by).powi(2) <= r * r {
                    brute.push((i, j));
                }
            }
        }
        let slow = CsrGraph::from_edges(pts.len(), &brute);
        assert_eq!(fast, slow);
    }

    #[test]
    fn radius_parameterization_hits_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, d) = (3000, 8.0);
        let g = geometric(n, radius_for_degree(n, d), &mut rng);
        // Boundary effects pull the average below the bulk estimate;
        // allow a generous band.
        let avg = g.average_degree();
        assert!(
            (d * 0.6..=d * 1.1).contains(&avg),
            "avg degree {avg} far from target {d}"
        );
    }

    #[test]
    fn zero_radius_is_edgeless() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = geometric(50, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn huge_radius_is_complete() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = geometric(20, 2.0, &mut rng);
        assert_eq!(g.edge_count(), 190);
    }

    #[test]
    fn empty_input() {
        assert_eq!(geometric_from_points(&[], 0.1).node_count(), 0);
    }
}

//! Random geometric graphs: points in the unit square, edges within a
//! radius.
//!
//! The conflict structure of mesh-refinement and clustering workloads
//! is *spatial* — tasks conflict when their geometric footprints
//! overlap — and the random geometric graph is its standard abstract
//! model, complementing the structureless `G(n, m)` family in the
//! controller experiments.

use crate::{CsrGraph, NodeId};
use rand::Rng;

/// Random geometric graph: `n` points uniform in the unit square,
/// an edge between every pair at Euclidean distance ≤ `radius`.
///
/// Built with a uniform grid of cell size `radius`, so construction is
/// `O(n + m)` in expectation rather than `O(n²)`.
pub fn geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> CsrGraph {
    assert!(radius >= 0.0, "radius must be non-negative");
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    geometric_from_points(&pts, radius)
}

/// The radius giving expected average degree `d` for `n` uniform
/// points (`d ≈ n·π·r²` away from the boundary).
pub fn radius_for_degree(n: usize, d: f64) -> f64 {
    assert!(n >= 2 && d >= 0.0);
    (d / (n as f64 * std::f64::consts::PI)).sqrt()
}

/// Build the geometric graph of explicit points (unit-square
/// coordinates assumed but not required — the grid adapts).
pub fn geometric_from_points(pts: &[(f64, f64)], radius: f64) -> CsrGraph {
    let n = pts.len();
    if n == 0 || radius <= 0.0 {
        return CsrGraph::edgeless(n);
    }
    // Grid bucketing with cell size ≥ radius, held in a counting-sort
    // CSR-of-cells layout: three flat arrays (per-cell counts → prefix
    // offsets → member scatter) instead of a HashMap of per-cell Vecs,
    // so a million-point build performs O(1) allocations rather than
    // one per occupied cell. The side length is clamped to O(√n) so
    // the dense cell arrays stay O(n) even for tiny radii — a larger
    // cell keeps the 3×3 neighbourhood scan correct, just less sharp.
    let by_radius = (1.0 / radius).ceil().max(1.0);
    let by_points = ((4 * n) as f64).sqrt().ceil().max(1.0);
    let cells = by_radius.min(by_points) as usize;
    let cell_of = |x: f64, y: f64| -> usize {
        let cx = ((x * cells as f64) as i64).clamp(0, cells as i64 - 1) as usize;
        let cy = ((y * cells as f64) as i64).clamp(0, cells as i64 - 1) as usize;
        cx * cells + cy
    };
    let nc = cells * cells;
    let mut cell_idx = vec![0u32; n];
    let mut off = vec![0u32; nc + 1];
    for (i, &(x, y)) in pts.iter().enumerate() {
        let c = cell_of(x, y);
        cell_idx[i] = c as u32;
        off[c + 1] += 1;
    }
    for c in 0..nc {
        off[c + 1] += off[c];
    }
    let mut members = vec![0u32; n];
    let mut cursor: Vec<u32> = off[..nc].to_vec();
    for (i, &c) in cell_idx.iter().enumerate() {
        members[cursor[c as usize] as usize] = i as u32;
        cursor[c as usize] += 1;
    }
    let r2 = radius * radius;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for cx in 0..cells {
        for cy in 0..cells {
            let c = cx * cells + cy;
            let mine = &members[off[c] as usize..off[c + 1] as usize];
            if mine.is_empty() {
                continue;
            }
            for dx in -1..=1i64 {
                for dy in -1..=1i64 {
                    let (ox, oy) = (cx as i64 + dx, cy as i64 + dy);
                    if ox < 0 || oy < 0 || ox >= cells as i64 || oy >= cells as i64 {
                        continue;
                    }
                    let oc = (ox as usize) * cells + oy as usize;
                    let other = &members[off[oc] as usize..off[oc + 1] as usize];
                    for &a in mine {
                        for &b in other {
                            if a < b {
                                let (ax, ay) = pts[a as usize];
                                let (bx, by) = pts[b as usize];
                                let (ddx, ddy) = (ax - bx, ay - by);
                                if ddx * ddx + ddy * ddy <= r2 {
                                    edges.push((a, b));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn brute_force_agreement() {
        // Grid construction must equal the O(n²) definition.
        let mut rng = StdRng::seed_from_u64(1);
        let pts: Vec<(f64, f64)> = (0..80)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let r = 0.17;
        let fast = geometric_from_points(&pts, r);
        let mut brute = Vec::new();
        for i in 0..pts.len() as u32 {
            for j in (i + 1)..pts.len() as u32 {
                let (ax, ay) = pts[i as usize];
                let (bx, by) = pts[j as usize];
                if (ax - bx).powi(2) + (ay - by).powi(2) <= r * r {
                    brute.push((i, j));
                }
            }
        }
        let slow = CsrGraph::from_edges(pts.len(), &brute);
        assert_eq!(fast, slow);
    }

    #[test]
    fn radius_parameterization_hits_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, d) = (3000, 8.0);
        let g = geometric(n, radius_for_degree(n, d), &mut rng);
        // Boundary effects pull the average below the bulk estimate;
        // allow a generous band.
        let avg = g.average_degree();
        assert!(
            (d * 0.6..=d * 1.1).contains(&avg),
            "avg degree {avg} far from target {d}"
        );
    }

    #[test]
    fn zero_radius_is_edgeless() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = geometric(50, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn huge_radius_is_complete() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = geometric(20, 2.0, &mut rng);
        assert_eq!(g.edge_count(), 190);
    }

    #[test]
    fn tiny_radius_stays_bounded() {
        // A radius of 1e-6 would naively make a 10¹²-cell grid; the
        // O(√n) side clamp must keep the build cheap and still exact.
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<(f64, f64)> = (0..200)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let g = geometric_from_points(&pts, 1e-6);
        assert_eq!(g.edge_count(), 0);
        // And with a clamped-but-active radius the result still matches
        // the brute-force definition.
        let r = 0.02;
        let fast = geometric_from_points(&pts, r);
        let mut brute = Vec::new();
        for i in 0..pts.len() as u32 {
            for j in (i + 1)..pts.len() as u32 {
                let (ax, ay) = pts[i as usize];
                let (bx, by) = pts[j as usize];
                if (ax - bx).powi(2) + (ay - by).powi(2) <= r * r {
                    brute.push((i, j));
                }
            }
        }
        assert_eq!(fast, CsrGraph::from_edges(pts.len(), &brute));
    }

    #[test]
    fn empty_input() {
        assert_eq!(geometric_from_points(&[], 0.1).node_count(), 0);
    }
}

//! Preferential-attachment (Barabási–Albert style) generator.
//!
//! Irregular workloads often have highly skewed conflict degrees (a few
//! hot data items conflict with everything); this family stresses the
//! controller far from the regular `K_d^n` worst case and the flat
//! `G(n, m)` case.

use crate::{CsrGraph, NodeId};
use rand::Rng;

/// Barabási–Albert preferential attachment: start from a clique on
/// `k + 1` nodes, then each arriving node attaches to `k` distinct
/// existing nodes chosen proportionally to their current degree.
///
/// # Panics
/// Panics if `n < k + 1` or `k == 0`.
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> CsrGraph {
    assert!(k >= 1, "attachment count k must be >= 1");
    assert!(n > k, "need at least k+1 = {} nodes", k + 1);
    // `targets_pool` holds one entry per half-edge endpoint, so drawing
    // uniformly from it implements degree-proportional sampling.
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * k * n);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(k * n);
    for u in 0..(k + 1) as NodeId {
        for v in (u + 1)..(k + 1) as NodeId {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    let mut chosen = Vec::with_capacity(k);
    for v in (k + 1)..n {
        let v = v as NodeId;
        chosen.clear();
        // Rejection sampling for k *distinct* targets.
        while chosen.len() < k {
            let t = pool[rng.random_range(0..pool.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((t, v));
            pool.push(t);
            pool.push(v);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_match_formula() {
        let mut rng = StdRng::seed_from_u64(11);
        let (n, k) = (200, 3);
        let g = preferential_attachment(n, k, &mut rng);
        assert_eq!(g.node_count(), n);
        // Seed clique C(k+1, 2) plus k per arrival.
        assert_eq!(g.edge_count(), (k + 1) * k / 2 + (n - k - 1) * k);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn degrees_are_skewed() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = preferential_attachment(500, 2, &mut rng);
        let max = g.max_degree();
        let avg = g.average_degree();
        assert!(
            max as f64 > 3.0 * avg,
            "expected heavy tail: max {max} vs avg {avg}"
        );
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_panics() {
        let mut rng = StdRng::seed_from_u64(13);
        let _ = preferential_attachment(3, 3, &mut rng);
    }

    #[test]
    fn minimal_size_works() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = preferential_attachment(4, 3, &mut rng);
        assert_eq!(g.edge_count(), 6); // just the seed clique K_4
    }
}

//! Generators for the graph families used throughout the paper.
//!
//! | Family | Paper use | Constructor |
//! |--------|-----------|-------------|
//! | uniform random `G(n, m)` | Fig. 2 (ii), Fig. 3 | [`gnm`] |
//! | Erdős–Rényi `G(n, p)` | auxiliary | [`gnp`] |
//! | random with target average degree | Fig. 2/3 parameterization | [`random_with_avg_degree`] |
//! | clique union `K_d^n` | Thms. 2–3 worst case | [`clique_union`] |
//! | cliques + isolated nodes | Fig. 2 (iii) | [`cliques_plus_isolated`] |
//! | `K_{n²} ∪ D_n` | Example 1 | [`clique_trap`] |
//! | grid / torus meshes | unfriendly-seating setting | [`grid`], [`torus`] |
//! | preferential attachment | skewed-degree stress | [`preferential_attachment`] |
//! | random geometric (unit square) | spatial conflict footprints | [`geometric`] |
//!
//! Every randomized generator takes an explicit RNG so experiments are
//! reproducible from a seed.

mod cliques;
mod geometric;
mod mesh;
mod pref;
mod random;

pub use cliques::{clique_trap, clique_union, cliques_plus_isolated, complete};
pub use geometric::{geometric, geometric_from_points, radius_for_degree};
pub use mesh::{grid, torus};
pub use pref::preferential_attachment;
pub use random::{gnm, gnp, random_with_avg_degree};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// All generators must produce simple graphs whose reported counts
    /// match reality; spot-check the whole module surface here.
    #[test]
    fn generators_produce_simple_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        let graphs = vec![
            gnm(100, 300, &mut rng),
            gnp(100, 0.05, &mut rng),
            random_with_avg_degree(100, 6.0, &mut rng),
            clique_union(100, 4),
            cliques_plus_isolated(10, 5, 50),
            clique_trap(8),
            complete(12),
            grid(8, 8),
            torus(8, 8),
            preferential_attachment(100, 3, &mut rng),
            geometric(100, 0.15, &mut rng),
        ];
        for g in graphs {
            // No self-loops / duplicates possible by construction of
            // CsrGraph; verify count agreement instead.
            let el = g.edge_list();
            assert_eq!(el.len(), g.edge_count());
            let mut sorted = el.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), el.len(), "duplicate edges found");
            for (u, v) in el {
                assert!(u < v);
                assert!((v as usize) < g.node_count());
            }
        }
    }
}

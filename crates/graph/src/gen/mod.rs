//! Generators for the graph families used throughout the paper.
//!
//! | Family | Paper use | Constructor |
//! |--------|-----------|-------------|
//! | uniform random `G(n, m)` | Fig. 2 (ii), Fig. 3 | [`gnm`] |
//! | Erdős–Rényi `G(n, p)` | auxiliary | [`gnp`] |
//! | random with target average degree | Fig. 2/3 parameterization | [`random_with_avg_degree`] |
//! | clique union `K_d^n` | Thms. 2–3 worst case | [`clique_union`] |
//! | cliques + isolated nodes | Fig. 2 (iii) | [`cliques_plus_isolated`] |
//! | `K_{n²} ∪ D_n` | Example 1 | [`clique_trap`] |
//! | grid / torus meshes | unfriendly-seating setting | [`grid`], [`torus`] |
//! | preferential attachment | skewed-degree stress | [`preferential_attachment`] |
//! | random geometric (unit square) | spatial conflict footprints | [`geometric`] |
//! | R-MAT / Kronecker | million-node skewed scale inputs | [`rmat`], [`rmat_with`] |
//! | grid with diagonals (2-D/3-D Moore) | million-node mesh scale inputs | [`grid2d_diag`], [`grid3d_diag`] |
//! | road-network-like (mesh + highway hierarchy) | million-node sparse scale inputs | [`road_like`] |
//!
//! Every randomized generator takes an explicit RNG (or, for the
//! scale generators, an explicit `u64` seed) so experiments are
//! reproducible from a seed.

mod cliques;
mod geometric;
mod griddiag;
mod mesh;
mod pref;
mod random;
mod rmat;
mod roadnet;

pub use cliques::{clique_trap, clique_union, cliques_plus_isolated, complete};
pub use geometric::{geometric, geometric_from_points, radius_for_degree};
pub use griddiag::{grid2d_diag, grid3d_diag};
pub use mesh::{grid, torus};
pub use pref::preferential_attachment;
pub use random::{gnm, gnp, random_with_avg_degree};
pub use rmat::{rmat, rmat_with, RMAT_GRAPH500};
pub use roadnet::road_like;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// All generators must produce simple graphs whose reported counts
    /// match reality; spot-check the whole module surface here.
    #[test]
    fn generators_produce_simple_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        let graphs = vec![
            gnm(100, 300, &mut rng),
            gnp(100, 0.05, &mut rng),
            random_with_avg_degree(100, 6.0, &mut rng),
            clique_union(100, 4),
            cliques_plus_isolated(10, 5, 50),
            clique_trap(8),
            complete(12),
            grid(8, 8),
            torus(8, 8),
            preferential_attachment(100, 3, &mut rng),
            geometric(100, 0.15, &mut rng),
            rmat(7, 4, 11),
            grid2d_diag(9, 11),
            grid3d_diag(4, 5, 6),
            road_like(120, 11),
        ];
        for g in graphs {
            // No self-loops / duplicates possible by construction of
            // CsrGraph; verify count agreement instead.
            let el = g.edge_list();
            assert_eq!(el.len(), g.edge_count());
            let mut sorted = el.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), el.len(), "duplicate edges found");
            for (u, v) in el {
                assert!(u < v);
                assert!((v as usize) < g.node_count());
            }
        }
    }
}

//! R-MAT / Kronecker power-law graphs (Chakrabarti, Zhan & Faloutsos).
//!
//! The scale harness needs million-node inputs whose degree
//! distribution is *skewed* — the regime where optimistic conflicts
//! concentrate on hubs and partition quality actually matters. R-MAT
//! is the standard generator for that family (it is the Graph500
//! reference input): each edge independently descends the adjacency
//! matrix by quadrant with probabilities `(a, b, c, d)`, so memory is
//! O(m) throughout and the build is seed-deterministic.

use crate::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Graph500 reference quadrant probabilities.
pub const RMAT_GRAPH500: [f64; 4] = [0.57, 0.19, 0.19, 0.05];

/// R-MAT graph with `n = 2^scale` nodes and exactly
/// `m = n · edge_factor` distinct undirected edges, using the
/// Graph500 probabilities [`RMAT_GRAPH500`].
///
/// Same `(scale, edge_factor, seed)` ⇒ byte-identical CSR.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat_with(scale, edge_factor, RMAT_GRAPH500, seed)
}

/// R-MAT graph with explicit quadrant probabilities `[a, b, c, d]`
/// (must sum to 1). Self-loops are rejected and duplicates are
/// resampled in top-up rounds until exactly `m` distinct canonical
/// edges exist, so the node/edge counts are exact, not approximate.
///
/// Construction keeps only the canonical edge list in memory — O(m)
/// words, no adjacency sets — and sorts once per top-up round.
///
/// # Panics
/// Panics if `scale` is outside `1..=31`, the probabilities do not
/// sum to 1, or `m` exceeds a quarter of the simple-graph capacity
/// (past that, duplicate-rejection resampling no longer terminates
/// quickly).
pub fn rmat_with(scale: u32, edge_factor: usize, p: [f64; 4], seed: u64) -> CsrGraph {
    assert!((1..=31).contains(&scale), "scale must be in 1..=31");
    let n = 1usize << scale;
    let m = n
        .checked_mul(edge_factor)
        .expect("edge count overflows usize");
    assert!(
        m <= n * (n - 1) / 4,
        "edge_factor {edge_factor} too dense for scale {scale}"
    );
    let sum: f64 = p.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "probabilities must sum to 1");
    let (ab, abc) = (p[0] + p[1], p[0] + p[1] + p[2]);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut canon: Vec<(NodeId, NodeId)> = Vec::with_capacity(m + m / 8);
    // Top-up loop: duplicates and self-loops are discarded, then the
    // shortfall is resampled from the same stream. Terminates fast at
    // the asserted density; the round cap is a safety valve for
    // adversarial probability corners (accepting a slightly sparser
    // graph rather than spinning).
    for _round in 0..64 {
        if canon.len() >= m {
            break;
        }
        for _ in 0..(m - canon.len()) {
            let (mut u, mut v) = (0u64, 0u64);
            for _ in 0..scale {
                let r: f64 = rng.random();
                let (du, dv) = if r < p[0] {
                    (0, 0)
                } else if r < ab {
                    (0, 1)
                } else if r < abc {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            if u == v {
                continue;
            }
            let e = if u < v { (u, v) } else { (v, u) };
            canon.push((e.0 as NodeId, e.1 as NodeId));
        }
        canon.sort_unstable();
        canon.dedup();
    }
    CsrGraph::from_sorted_unique_edges(n, &canon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;

    #[test]
    fn exact_counts() {
        let g = rmat(10, 8, 42);
        assert_eq!(g.node_count(), 1024);
        assert_eq!(g.edge_count(), 8192);
    }

    #[test]
    fn seed_determinism() {
        assert_eq!(rmat(9, 6, 7), rmat(9, 6, 7));
        assert_ne!(rmat(9, 6, 7), rmat(9, 6, 8));
    }

    #[test]
    fn skew_present() {
        // Graph500 probabilities concentrate mass in quadrant a: the
        // hottest node must be far above the average degree, unlike a
        // uniform G(n, m) where max/avg stays small.
        let g = rmat(12, 8, 1);
        let avg = g.average_degree();
        let max = g.max_degree() as f64;
        assert!(
            max >= 6.0 * avg,
            "expected skew: max {max} vs avg {avg}"
        );
    }

    #[test]
    fn uniform_probs_are_not_skewed() {
        let g = rmat_with(12, 8, [0.25, 0.25, 0.25, 0.25], 1);
        let avg = g.average_degree();
        assert!((g.max_degree() as f64) < 4.0 * avg);
    }
}

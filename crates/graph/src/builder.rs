//! Incremental edge-list builder.
//!
//! Generators and application front-ends accumulate edges here and then
//! freeze into a [`CsrGraph`]. The builder tolerates duplicates,
//! reversed orientations, and self-loops, canonicalizing at build time.

use crate::{CsrGraph, NodeId};

/// Accumulates an undirected edge list and freezes it into a CSR graph.
///
/// # Examples
/// ```
/// use optpar_graph::{GraphBuilder, ConflictGraph};
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1);
/// b.edge(1, 0); // duplicate, collapsed
/// b.edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Start a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Start a builder with pre-reserved capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edge records added so far (before dedup).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Record the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} nodes",
            self.n
        );
        self.edges.push((u, v));
        self
    }

    /// Record a clique over `nodes` (all pairs).
    pub fn clique(&mut self, nodes: &[NodeId]) -> &mut Self {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                self.edge(u, v);
            }
        }
        self
    }

    /// Record a simple path `nodes[0] - nodes[1] - ...`.
    pub fn path(&mut self, nodes: &[NodeId]) -> &mut Self {
        for w in nodes.windows(2) {
            self.edge(w[0], w[1]);
        }
        self
    }

    /// Record a cycle over `nodes` (path plus closing edge).
    ///
    /// # Panics
    /// Panics if fewer than 3 nodes are given (shorter cycles would be a
    /// self-loop or duplicate edge).
    pub fn cycle(&mut self, nodes: &[NodeId]) -> &mut Self {
        assert!(nodes.len() >= 3, "a cycle needs at least 3 nodes");
        self.path(nodes);
        self.edge(nodes[nodes.len() - 1], nodes[0]);
        self
    }

    /// Record a star centred on `hub` with the given leaves.
    pub fn star(&mut self, hub: NodeId, leaves: &[NodeId]) -> &mut Self {
        for &l in leaves {
            self.edge(hub, l);
        }
        self
    }

    /// Freeze into an immutable CSR graph (dedups, canonicalizes, drops
    /// self-loops).
    pub fn build(self) -> CsrGraph {
        CsrGraph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictGraph;

    #[test]
    fn clique_edge_count() {
        let mut b = GraphBuilder::new(5);
        b.clique(&[0, 1, 2, 3, 4]);
        let g = b.build();
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn path_and_cycle() {
        let mut b = GraphBuilder::new(4);
        b.path(&[0, 1, 2, 3]);
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);

        let mut b = GraphBuilder::new(4);
        b.cycle(&[0, 1, 2, 3]);
        let g = b.build();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn star_shape() {
        let mut b = GraphBuilder::new(5);
        b.star(0, &[1, 2, 3, 4]);
        let g = b.build();
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(4), 1);
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn tiny_cycle_panics() {
        let mut b = GraphBuilder::new(2);
        b.cycle(&[0, 1]);
    }

    #[test]
    fn chaining() {
        let g = {
            let mut b = GraphBuilder::with_capacity(6, 8);
            b.clique(&[0, 1, 2]).path(&[2, 3, 4]).star(4, &[5]);
            b.build()
        };
        assert_eq!(g.edge_count(), 6);
    }
}

//! Plain-text graph serialization.
//!
//! Format (one record per line, `#` comments allowed):
//!
//! ```text
//! # anything
//! p <nodes> <edges>
//! e <u> <v>
//! ...
//! ```
//!
//! A DIMACS-flavoured edge list: enough to round-trip experiment inputs
//! and exchange CC graphs with external tooling (plotters, other
//! implementations).

use crate::{ConflictGraph, CsrGraph, NodeId};
use std::io::{self, BufRead, Write};

/// Errors produced while parsing the edge-list format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Syntax {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// The `p` header is missing or duplicated.
    Header(String),
    /// Declared counts do not match the records.
    CountMismatch {
        /// Edge count declared by the `p` header.
        expected: usize,
        /// Edges actually parsed (after dedup).
        got: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ParseError::Header(msg) => write!(f, "header: {msg}"),
            ParseError::CountMismatch { expected, got } => {
                write!(
                    f,
                    "edge count mismatch: header says {expected}, found {got}"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Write `g` in the edge-list format.
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut w: W) -> io::Result<()> {
    writeln!(w, "p {} {}", g.node_count(), g.edge_count())?;
    for (u, v) in g.edge_list() {
        writeln!(w, "e {u} {v}")?;
    }
    Ok(())
}

/// Serialize to a `String`.
pub fn to_edge_list_string(g: &CsrGraph) -> String {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("edge list is ASCII")
}

/// Parse the edge-list format.
pub fn read_edge_list<R: BufRead>(r: R) -> Result<CsrGraph, ParseError> {
    let mut header: Option<(usize, usize)> = None;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if header.is_some() {
                    return Err(ParseError::Header("duplicate 'p' line".into()));
                }
                let n = parse_num(parts.next(), lineno, "node count")?;
                let m = parse_num(parts.next(), lineno, "edge count")?;
                header = Some((n, m));
                edges.reserve(m);
            }
            Some("e") => {
                if header.is_none() {
                    return Err(ParseError::Header("'e' before 'p'".into()));
                }
                let u = parse_num(parts.next(), lineno, "edge endpoint")? as NodeId;
                let v = parse_num(parts.next(), lineno, "edge endpoint")? as NodeId;
                edges.push((u, v));
            }
            Some(tok) => {
                return Err(ParseError::Syntax {
                    line: lineno,
                    msg: format!("unknown record '{tok}'"),
                })
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    let Some((n, m)) = header else {
        return Err(ParseError::Header("missing 'p' line".into()));
    };
    let g = CsrGraph::from_edges(n, &edges);
    if g.edge_count() != m {
        return Err(ParseError::CountMismatch {
            expected: m,
            got: g.edge_count(),
        });
    }
    Ok(g)
}

/// Parse from a string.
pub fn from_edge_list_str(s: &str) -> Result<CsrGraph, ParseError> {
    read_edge_list(s.as_bytes())
}

fn parse_num(tok: Option<&str>, line: usize, what: &str) -> Result<usize, ParseError> {
    tok.ok_or_else(|| ParseError::Syntax {
        line,
        msg: format!("missing {what}"),
    })?
    .parse()
    .map_err(|e| ParseError::Syntax {
        line,
        msg: format!("bad {what}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnm(50, 120, &mut rng);
        let s = to_edge_list_string(&g);
        let g2 = from_edge_list_str(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_edgeless() {
        let g = CsrGraph::edgeless(7);
        let g2 = from_edge_list_str(&to_edge_list_string(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines() {
        let s = "# a comment\n\np 3 2\n# mid comment\ne 0 1\ne 1 2\n";
        let g = from_edge_list_str(s).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(
            from_edge_list_str("e 0 1\n"),
            Err(ParseError::Header(_))
        ));
        assert!(matches!(from_edge_list_str(""), Err(ParseError::Header(_))));
    }

    #[test]
    fn duplicate_header_rejected() {
        assert!(matches!(
            from_edge_list_str("p 2 0\np 2 0\n"),
            Err(ParseError::Header(_))
        ));
    }

    #[test]
    fn bad_tokens_rejected() {
        let e = from_edge_list_str("p 2 1\nq 0 1\n").unwrap_err();
        assert!(matches!(e, ParseError::Syntax { line: 2, .. }), "{e}");
        let e = from_edge_list_str("p 2 1\ne 0\n").unwrap_err();
        assert!(matches!(e, ParseError::Syntax { .. }), "{e}");
        let e = from_edge_list_str("p x 1\n").unwrap_err();
        assert!(matches!(e, ParseError::Syntax { .. }), "{e}");
    }

    #[test]
    fn count_mismatch_rejected() {
        // Duplicate edge collapses -> only 1 edge vs declared 2.
        let e = from_edge_list_str("p 2 2\ne 0 1\ne 1 0\n").unwrap_err();
        assert!(matches!(
            e,
            ParseError::CountMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn out_of_range_panics_via_from_edges() {
        let r = std::panic::catch_unwind(|| from_edge_list_str("p 2 1\ne 0 5\n"));
        assert!(r.is_err());
    }

    #[test]
    fn display_formats() {
        let e = from_edge_list_str("p 2 2\ne 0 1\ne 1 0\n").unwrap_err();
        assert!(e.to_string().contains("mismatch"));
    }
}

//! **TAB-PROF** — the §4.1 motivation, measured on the *real*
//! application: the available-parallelism profile of Delaunay mesh
//! refinement. The paper (citing LonStar) claims parallelism "can go
//! from no parallelism to one thousand possible parallel tasks in just
//! 30 temporal steps"; here we measure the oracle profile of our own
//! refinement workload by launching the entire work-set every round
//! (maximum speculation) and counting commits — the per-step count of
//! cavities an oracle could refine conflict-free.
//!
//! Usage: `cargo run --release -p optpar-bench --bin profile_delaunay
//! [points] [--csv]`

use optpar_apps::delaunay::{DelaunayOp, RefineConfig};
use optpar_apps::geometry::Point;
use optpar_apps::triangulation::Mesh;
use optpar_bench::{downsample, sparkline, Table, SEED};
use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let npts: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut pts = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(1.0, 1.0),
        Point::new(0.0, 1.0),
    ];
    pts.extend((0..npts).map(|_| Point::new(rng.random::<f64>(), rng.random::<f64>())));
    let mesh = Mesh::delaunay(&pts);
    let cfg = RefineConfig::area_only(1e-4);

    let (space, mut op) = DelaunayOp::with_auto_capacity(&mesh, cfg);
    let tasks = op.initial_tasks();
    let ex = Executor::new(
        &op,
        &space,
        ExecutorConfig {
            workers: 1, // oracle measurement wants the model's exact rule
            policy: ConflictPolicy::FirstWins,
            ..ExecutorConfig::default()
        },
    );
    let mut ws = WorkSet::from_vec(tasks);
    let mut profile: Vec<usize> = Vec::new();
    let mut pending: Vec<usize> = Vec::new();
    while !ws.is_empty() {
        pending.push(ws.len());
        let rs = ex.run_round(&mut ws, usize::MAX, &mut rng);
        profile.push(rs.committed);
        assert!(profile.len() < 100_000);
    }

    let mut table = Table::new(["step", "pending work", "oracle parallelism"]);
    for (t, (&p, &w)) in profile.iter().zip(&pending).enumerate() {
        table.row([t.to_string(), w.to_string(), p.to_string()]);
    }
    println!(
        "TAB-PROF: Delaunay refinement oracle parallelism, {} initial points, max_area = {}",
        npts, cfg.max_area
    );
    table.print("§4.1 — available-parallelism profile of mesh refinement");

    let as_f64: Vec<f64> = profile.iter().map(|&x| x as f64).collect();
    let peak = profile.iter().copied().max().unwrap_or(0);
    let peak_step = profile.iter().position(|&x| x == peak).unwrap_or(0);
    println!(
        "\nprofile: {}\npeak {} parallel cavities at step {} of {}; the ramp from {} to {} \
         spans {} steps — the abrupt growth §4.1 demands fast adaptation for.",
        sparkline(&downsample(&as_f64, 72)),
        peak,
        peak_step,
        profile.len(),
        profile.first().unwrap_or(&0),
        peak,
        peak_step,
    );
}

//! **TAB-ORD** (extension; §5 future work) — the price of ordering:
//! unordered exploitable parallelism `EM_m(G)` vs ordered `b_m(G)`
//! (which this repo's ordered scheduler achieves exactly), plus the
//! hybrid controller steering an ordered PDES workload.
//!
//! Usage: `cargo run --release -p optpar-bench --bin ordered_window
//! [trials] [--csv]`

use optpar_bench::{f, pct, Table, SEED};
use optpar_core::control::{Controller, HybridController, HybridParams};
use optpar_core::ordered::{OrderedScheduler, PdesWorkload};
use optpar_core::{estimate, theory};
use optpar_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000);
    let mut rng = StdRng::seed_from_u64(SEED);
    let (n, d) = (2000usize, 16.0);
    let g = gen::random_with_avg_degree(n, d, &mut rng);

    // Part 1: the parallelism gap EM_m vs b_m.
    let mut table = Table::new(["m", "EM_m (unordered)", "b_m (ordered)", "ordering cost"]);
    for &m in &[25usize, 50, 100, 200, 400, 800, 1600] {
        let em = estimate::em_m_mc(&g, m, trials, &mut rng);
        let b = theory::b_m_exact(&g, m);
        table.row([
            m.to_string(),
            f(em.mean, 1),
            f(b, 1),
            pct(1.0 - b / em.mean),
        ]);
    }
    println!("TAB-ORD: ordered vs unordered parallelism, n = {n}, d = {d}");
    table.print("§5 extension — what commit ordering costs");

    // Part 2: controller on an ordered PDES workload.
    let wl = PdesWorkload {
        n_entities: 500,
        load: 0.6,
        horizon: 64,
    };
    let mut table = Table::new(["window policy", "rounds", "launched", "abort%"]);
    for &fixed in &[8usize, 64, 512] {
        let mut sched = OrderedScheduler::new();
        let mut rng2 = StdRng::seed_from_u64(SEED + 1);
        for t in wl.initial(3000, &mut rng2) {
            sched.insert(t);
        }
        let mut rounds = 0;
        while !sched.is_empty() && rounds < 1_000_000 {
            let mut sp = wl.spawner(&mut rng2);
            sched.run_round(fixed, &mut sp);
            rounds += 1;
        }
        table.row([
            format!("fixed {fixed}"),
            rounds.to_string(),
            sched.total_launched.to_string(),
            pct(sched.total_aborted as f64 / sched.total_launched.max(1) as f64),
        ]);
    }
    {
        let mut sched = OrderedScheduler::new();
        let mut rng2 = StdRng::seed_from_u64(SEED + 1);
        for t in wl.initial(3000, &mut rng2) {
            sched.insert(t);
        }
        let mut ctl = HybridController::new(HybridParams {
            rho: 0.25,
            m_max: 2048,
            ..HybridParams::default()
        });
        let mut rounds = 0;
        while !sched.is_empty() && rounds < 1_000_000 {
            let m = ctl.current_m();
            let mut sp = wl.spawner(&mut rng2);
            let out = sched.run_round(m, &mut sp);
            ctl.observe(out.conflict_ratio(), out.launched);
            rounds += 1;
        }
        table.row([
            "hybrid (ρ = 25%)".to_string(),
            rounds.to_string(),
            sched.total_launched.to_string(),
            pct(sched.total_aborted as f64 / sched.total_launched.max(1) as f64),
        ]);
    }
    table.print("§5 extension — adaptive window on ordered PDES");
}

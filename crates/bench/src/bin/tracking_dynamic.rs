//! **TAB-TRACK** — §4.1's motivating scenario: available parallelism
//! changes abruptly (Delaunay refinement goes from no parallelism to
//! ~1000 parallel tasks within ~30 steps, per the LonStar profiles the
//! paper cites). The controller must re-track the moving operating
//! point quickly.
//!
//! Two scripts:
//! 1. a Delaunay-like ramp (parallelism grows 0 → n_max across 30
//!    steps),
//! 2. a collapse/recovery spike (sparse → dense → sparse).
//!
//! Reported per phase: mean |m − μ_phase|/μ_phase over the second half
//! of the phase (tracking error) and the response lag (rounds until
//! within 25% of the new μ after each phase switch).
//!
//! Usage: `cargo run --release -p optpar-bench --bin tracking_dynamic
//! [rounds_per_phase] [--csv]`

use optpar_bench::{pct, Table, SEED};
use optpar_core::control::{
    Controller, HybridController, HybridParams, RecurrenceA, RecurrenceParams,
};
use optpar_core::dynamics::{spike_script, Phase, PhasedPlant};
use optpar_core::estimate;
use optpar_core::sim::run_loop;
use optpar_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluate<C: Controller>(
    label: &str,
    mk_plant: impl Fn(&mut StdRng) -> (PhasedPlant, Vec<usize>, Vec<usize>),
    mut ctl: C,
    _rho: f64,
    rng: &mut StdRng,
    table: &mut Table,
) {
    let (mut plant, mus, bounds) = mk_plant(rng);
    let total = plant.total_rounds();
    let tr = run_loop(&mut plant, &mut ctl, total, rng);
    for (k, (&mu, &start)) in mus.iter().zip(&bounds).enumerate() {
        let end = bounds.get(k + 1).copied().unwrap_or(total);
        let half = start + (end - start) / 2;
        let err: f64 = tr.steps[half..end]
            .iter()
            .map(|s| (s.m as f64 - mu as f64).abs() / mu.max(1) as f64)
            .sum::<f64>()
            / (end - half) as f64;
        let lag = tr.steps[start..end]
            .iter()
            .position(|s| (s.m as f64 - mu as f64).abs() / mu.max(1) as f64 <= 0.25)
            .map(|l| l.to_string())
            .unwrap_or_else(|| "never".into());
        table.row([
            format!("{label} / {}", ctl.name()),
            k.to_string(),
            mu.to_string(),
            lag,
            pct(err),
        ]);
    }
}

fn main() {
    let rpp: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(80);
    let rho = 0.20;
    let mut rng = StdRng::seed_from_u64(SEED);

    let mut table = Table::new([
        "script/controller",
        "phase",
        "mu",
        "lag (rounds)",
        "track err",
    ]);

    // Script 1: Delaunay-like ramp, built explicitly so we can compute
    // the per-phase μ.
    let ramp = |rng: &mut StdRng| {
        let n = 4000;
        let steps = 5;
        let phases: Vec<Phase> = (1..=steps)
            .map(|i| {
                let mu_target = i * 800 / steps;
                let d = (rho * n as f64 / mu_target as f64).clamp(0.1, 64.0);
                Phase {
                    graph: gen::random_with_avg_degree(n, d, rng),
                    rounds: rpp,
                    label: "ramp",
                }
            })
            .collect();
        let mus: Vec<usize> = phases
            .iter()
            .map(|p| estimate::find_mu(&p.graph, rho, 400, rng))
            .collect();
        let bounds: Vec<usize> = (0..steps).map(|i| i * rpp).collect();
        (PhasedPlant::new(phases), mus, bounds)
    };
    // Script 2: spike.
    let spike = |rng: &mut StdRng| {
        let plant = spike_script(2000, rpp, rng);
        // Recompute μ for the three phases (same seeds as inside is not
        // possible; rebuild equivalent graphs).
        let s1 = gen::random_with_avg_degree(2000, 2.0, rng);
        let s2 = gen::random_with_avg_degree(2000, 128.0, rng);
        let s3 = gen::random_with_avg_degree(2000, 2.0, rng);
        let mus = vec![
            estimate::find_mu(&s1, rho, 400, rng),
            estimate::find_mu(&s2, rho, 400, rng),
            estimate::find_mu(&s3, rho, 400, rng),
        ];
        (plant, mus, vec![0, rpp, 2 * rpp])
    };

    let hp = HybridParams {
        rho,
        m_max: 8192,
        ..HybridParams::default()
    };
    let rp = RecurrenceParams {
        rho,
        m_max: 8192,
        ..RecurrenceParams::default()
    };
    evaluate(
        "ramp",
        ramp,
        HybridController::new(hp),
        rho,
        &mut rng,
        &mut table,
    );
    evaluate(
        "ramp",
        ramp,
        RecurrenceA::new(rp),
        rho,
        &mut rng,
        &mut table,
    );
    evaluate(
        "spike",
        spike,
        HybridController::new(hp),
        rho,
        &mut rng,
        &mut table,
    );
    evaluate(
        "spike",
        spike,
        RecurrenceA::new(rp),
        rho,
        &mut rng,
        &mut table,
    );

    println!("TAB-TRACK: dynamic tracking, ρ = 20%, {rpp} rounds/phase");
    table.print("§4.1 — tracking abrupt parallelism changes");
}

//! **TAB-T3** — validate Thm. 3 and Cor. 2: the exact closed form
//! `EM_m(K_d^n)` against Monte-Carlo simulation of the actual graph,
//! and the asymptotic bound of Cor. 2 against the exact form.
//!
//! Also verifies Thm. 2's direction on a random graph with matched
//! (n, d): `EM_m(G) ≥ EM_m(K_d^n)`.
//!
//! Usage: `cargo run --release -p optpar-bench --bin thm3_worst_case
//! [trials] [--csv]`

use optpar_bench::{f, Table, SEED};
use optpar_core::{estimate, theory};
use optpar_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let mut rng = StdRng::seed_from_u64(SEED);
    let (n, d) = (1020usize, 16usize); // 17 | 1020: s = 60 cliques
    let worst = gen::clique_union(n, d);
    let random = gen::random_with_avg_degree(n, d as f64, &mut rng);

    let mut table = Table::new([
        "m",
        "EM exact (Thm.3)",
        "EM MC (K_d^n)",
        "ci95",
        "EM MC (random)",
        "r̄ exact",
        "r̄ Cor.2",
        "thm2_ok",
    ]);
    for m in [1usize, 2, 5, 10, 20, 40, 80, 160, 320, 640, 1020] {
        let exact = theory::em_worst_exact(n, d, m);
        let mc = estimate::em_m_mc(&worst, m, trials, &mut rng);
        let mc_rand = estimate::em_m_mc(&random, m, trials, &mut rng);
        table.row([
            m.to_string(),
            f(exact, 3),
            f(mc.mean, 3),
            f(mc.ci95(), 3),
            f(mc_rand.mean, 3),
            f(theory::rbar_worst_exact(n, d, m), 4),
            f(theory::rbar_worst_asymptotic(n, d, m), 4),
            (mc_rand.mean + mc_rand.ci95() + 1e-9 >= exact).to_string(),
        ]);
    }
    println!("TAB-T3: worst-case closed forms, n = {n}, d = {d}, {trials} trials/point");
    table.print("Thm. 3 / Cor. 2 — EM_m(K_d^n) exact vs simulated, Thm. 2 direction");
}

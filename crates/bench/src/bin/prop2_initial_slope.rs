//! **TAB-P2** — validate Prop. 2: the initial finite difference of the
//! conflict ratio is `Δr̄(1) = d / (2(n−1))`, independent of the graph
//! structure beyond `n` and the average degree `d`.
//!
//! `Δr̄(1) = r̄(2) − r̄(1) = r̄(2)` is estimated by Monte-Carlo at
//! `m = 2` across structurally different families with matched (n, d).
//!
//! Usage: `cargo run --release -p optpar-bench --bin prop2_initial_slope
//! [trials] [--csv]`

use optpar_bench::{f, Table, SEED};
use optpar_core::{estimate, theory};
use optpar_graph::{gen, ConflictGraph, CsrGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000_000);
    let mut rng = StdRng::seed_from_u64(SEED);
    let n = 600;
    let d = 12usize;

    let families: Vec<(&str, CsrGraph)> = vec![
        (
            "random G(n,m)",
            gen::random_with_avg_degree(n, d as f64, &mut rng),
        ),
        ("clique union K_d^n", {
            // (d+1) | n not required to hold for others; here 13 | 600
            // fails, so use d=11 cliques... keep d exact: build with
            // clique size d+1 over a divisible prefix and pad with a
            // matched random remainder is messy — instead use n' = 598
            // is also indivisible; simplest: cliques of size d+1 = 13
            // covering 46*13 = 598 nodes + 2 isolated gives d ≈ 11.96,
            // close but not exact. Use exact: n = 600, cliques of size
            // 13 can't tile; take cliques_plus_isolated and report the
            // actual d in the table instead.
            gen::cliques_plus_isolated(46, 13, 2)
        }),
        ("preferential attachment", {
            gen::preferential_attachment(n, d / 2, &mut rng)
        }),
        ("torus-ish (d=4 baseline)", gen::torus(20, 30)),
    ];

    let mut table = Table::new([
        "family",
        "n",
        "d (actual)",
        "predicted d/(2(n-1))",
        "measured r̄(2)",
        "ci95",
        "|Δ|/pred",
    ]);
    for (name, g) in families {
        let davg = g.average_degree();
        let nn = g.node_count();
        let pred = theory::initial_slope(nn, davg);
        let meas = estimate::conflict_ratio_mc(&g, 2, trials, &mut rng);
        table.row([
            name.to_string(),
            nn.to_string(),
            f(davg, 3),
            f(pred, 6),
            f(meas.mean, 6),
            f(meas.ci95(), 6),
            f((meas.mean - pred).abs() / pred.max(1e-12), 3),
        ]);
    }
    println!("TAB-P2: Prop. 2 initial-slope validation, {trials} trials/row");
    table.print("Prop. 2 — Δr̄(1) = d / (2(n−1)) across families");
}

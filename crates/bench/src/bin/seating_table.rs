//! **TAB-SEAT** (extension) — the unfriendly seating problem the paper
//! connects its parallelism analysis to (§3): exact expected
//! greedy-random MIS occupancy on paths and cycles vs the Turán lower
//! bound vs Monte-Carlo simulation, converging to the Freedman–Shepp
//! density limit `(1 − e⁻²)/2 ≈ 0.4323`.
//!
//! Usage: `cargo run --release -p optpar-bench --bin seating_table
//! [trials] [--csv]`

use optpar_bench::{f, Table, SEED};
use optpar_core::seating;
use optpar_core::theory;
use optpar_graph::{mis, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000);
    let mut rng = StdRng::seed_from_u64(SEED);

    let mut table = Table::new([
        "n",
        "path exact",
        "path MC",
        "path density",
        "cycle exact",
        "Turán n/3",
        "limit (1-e⁻²)/2",
    ]);
    for &n in &[8usize, 32, 128, 512, 2048] {
        let exact = seating::seating_path_exact(n);
        let mut b = GraphBuilder::new(n);
        let nodes: Vec<NodeId> = (0..n as NodeId).collect();
        b.path(&nodes);
        let g = b.build();
        let mc: f64 = (0..trials)
            .map(|_| mis::greedy_random_mis(&g, &mut rng).len() as f64)
            .sum::<f64>()
            / trials as f64;
        table.row([
            n.to_string(),
            f(exact, 2),
            f(mc, 2),
            f(exact / n as f64, 4),
            f(seating::seating_cycle_exact(n.max(3)), 2),
            f(theory::turan_bound(n, 2.0 * (n - 1) as f64 / n as f64), 2),
            f(seating::seating_density_limit() * n as f64, 2),
        ]);
    }
    println!("TAB-SEAT: unfriendly seating exact DP vs simulation, {trials} trials/row");
    table.print("§3 connection — unfriendly seating on paths/cycles");
    println!(
        "\nDensity limit (1 − e⁻²)/2 = {:.5}; exact path density converges to it\n\
         from above, and always exceeds the Turán bound 1/3.",
        seating::seating_density_limit()
    );
}

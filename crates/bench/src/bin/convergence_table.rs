//! **TAB-CONV** — controller convergence comparison (§4.1): rounds to
//! reach and hold the operating point `μ` (|m − μ|/μ ≤ 25% for 4
//! consecutive rounds) for the hybrid Algorithm 1, Recurrence A only,
//! Recurrence B only, and the bisection baseline, across graph sizes,
//! degrees, targets ρ, and both cold (m₀ = 2) and smart
//! (m₀ = n/(2(d+1))) starts.
//!
//! Expected shape: hybrid ≈ B ≪ A; bisection in between; smart start
//! cuts the remaining gap.
//!
//! Usage: `cargo run --release -p optpar-bench --bin convergence_table
//! [reps] [--csv]`

use optpar_bench::{f, Table, SEED};
use optpar_core::control::{
    BisectionController, Controller, HybridController, HybridParams, RecurrenceA, RecurrenceB,
    RecurrenceParams,
};
use optpar_core::estimate;
use optpar_core::sim::{run_loop, StaticGraphPlant};
use optpar_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAX_ROUNDS: usize = 3000;

fn steps<C: Controller, R: rand::Rng + ?Sized>(
    g: &optpar_graph::CsrGraph,
    ctl: &mut C,
    mu: usize,
    rng: &mut R,
) -> Option<usize> {
    let mut plant = StaticGraphPlant::new(g.clone());
    let tr = run_loop(&mut plant, ctl, MAX_ROUNDS, rng);
    tr.convergence_round(mu, 0.25, 4)
}

fn fmt(x: &[Option<usize>]) -> String {
    let ok: Vec<usize> = x.iter().flatten().copied().collect();
    if ok.is_empty() {
        return "never".into();
    }
    let mean = ok.iter().sum::<usize>() as f64 / ok.len() as f64;
    if ok.len() < x.len() {
        format!("{} ({}/{} conv)", f(mean, 1), ok.len(), x.len())
    } else {
        f(mean, 1)
    }
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let mut rng = StdRng::seed_from_u64(SEED);

    let mut table = Table::new([
        "n",
        "d",
        "rho",
        "mu",
        "hybrid",
        "hybrid+smart",
        "rec_B",
        "rec_A",
        "bisection",
    ]);
    for &(n, d) in &[(1000usize, 8.0f64), (2000, 16.0), (4000, 32.0), (2000, 4.0)] {
        for &rho in &[0.15, 0.25] {
            let g = gen::random_with_avg_degree(n, d, &mut rng);
            let mu = estimate::find_mu(&g, rho, 800, &mut rng);
            if mu < 4 {
                continue;
            }
            let rp = RecurrenceParams {
                rho,
                m_max: 8192,
                ..RecurrenceParams::default()
            };
            let hp = HybridParams {
                rho,
                m_max: 8192,
                ..HybridParams::default()
            };
            let mut col: [Vec<Option<usize>>; 5] = Default::default();
            for _ in 0..reps {
                col[0].push(steps(&g, &mut HybridController::new(hp), mu, &mut rng));
                let smart = HybridParams {
                    m0: optpar_core::control::smart_initial_m(n, d).min(hp.m_max),
                    ..hp
                };
                col[1].push(steps(&g, &mut HybridController::new(smart), mu, &mut rng));
                col[2].push(steps(&g, &mut RecurrenceB::new(rp), mu, &mut rng));
                col[3].push(steps(&g, &mut RecurrenceA::new(rp), mu, &mut rng));
                col[4].push(steps(&g, &mut BisectionController::new(rp), mu, &mut rng));
            }
            table.row([
                n.to_string(),
                f(d, 0),
                f(rho, 2),
                mu.to_string(),
                fmt(&col[0]),
                fmt(&col[1]),
                fmt(&col[2]),
                fmt(&col[3]),
                fmt(&col[4]),
            ]);
        }
    }
    println!("TAB-CONV: mean rounds to converge (|m−μ|/μ ≤ 25% held 4 rounds), {reps} reps");
    table.print("§4.1 — controller convergence comparison");
}

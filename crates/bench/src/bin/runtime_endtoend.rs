//! **TAB-RT** — the experiment the paper leaves as future work ("the
//! proposed control heuristic is now being integrated in the Galois
//! system"): run real irregular applications on the speculative
//! runtime under (a) fixed allocations and (b) the adaptive hybrid
//! controller, and compare rounds-to-completion, abort ratio, and
//! wasted work.
//!
//! Expected shape: small fixed m wastes rounds (under-parallelized);
//! large fixed m wastes work (aborts); the hybrid controller lands near
//! the best fixed point *without knowing it in advance*, pinning the
//! abort ratio near ρ.
//!
//! Usage: `cargo run --release -p optpar-bench --bin runtime_endtoend
//! [--csv]`

use optpar_apps::boruvka::{BoruvkaOp, WeightedGraph};
use optpar_apps::clustering::{blobs, ClusteringOp};
use optpar_apps::coloring::ColoringOp;
use optpar_apps::delaunay::{DelaunayOp, RefineConfig};
use optpar_apps::geometry::Point;
use optpar_apps::misapp::MisOp;
use optpar_apps::sssp::{SsspInput, SsspOp};
use optpar_apps::survey::{Formula, SurveyOp};
use optpar_apps::triangulation::Mesh;
use optpar_bench::{f, pct, Table, SEED};
use optpar_core::control::{Controller, FixedController, HybridController, HybridParams};
use optpar_graph::gen;
use optpar_runtime::{Executor, ExecutorConfig, Operator, RunStats, WorkSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn drive<O: Operator, C: Controller>(
    op: &O,
    space: &optpar_runtime::LockSpace,
    tasks: Vec<O::Task>,
    mut ctl: C,
    seed: u64,
) -> RunStats {
    let ex = Executor::new(op, space, ExecutorConfig::default());
    let mut ws = WorkSet::from_vec(tasks);
    let mut rng = StdRng::seed_from_u64(seed);
    ex.run_with_controller(&mut ws, &mut ctl, 5_000_000, &mut rng)
}

fn report(table: &mut Table, app: &str, policy: &str, run: &RunStats) {
    table.row([
        app.to_string(),
        policy.to_string(),
        run.round_count().to_string(),
        run.total_launched().to_string(),
        run.total_committed().to_string(),
        pct(run.overall_conflict_ratio()),
        f(run.commits_per_round(), 1),
    ]);
}

fn main() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut table = Table::new([
        "app",
        "allocation",
        "rounds",
        "launched",
        "committed",
        "abort%",
        "commits/round",
    ]);
    let rho = 0.25;
    let fixed = [4usize, 32, 256, 1024];

    // --- Maximal independent set ------------------------------------
    {
        let g = gen::random_with_avg_degree(20_000, 12.0, &mut rng);
        for &m in &fixed {
            let (space, op) = MisOp::new(g.clone());
            let run = drive(&op, &space, op.initial_tasks(), FixedController::new(m), 1);
            report(&mut table, "mis", &format!("fixed {m}"), &run);
        }
        let (space, op) = MisOp::new(g.clone());
        let run = drive(
            &op,
            &space,
            op.initial_tasks(),
            HybridController::new(HybridParams {
                rho,
                m_max: 4096,
                ..HybridParams::default()
            }),
            1,
        );
        report(&mut table, "mis", "hybrid", &run);
        let mut op = op;
        MisOp::validate(&g, &op.decisions()).expect("valid MIS");
    }

    // --- Greedy colouring --------------------------------------------
    {
        let g = gen::random_with_avg_degree(20_000, 12.0, &mut rng);
        for &m in &fixed {
            let (space, op) = ColoringOp::new(g.clone());
            let run = drive(&op, &space, op.initial_tasks(), FixedController::new(m), 2);
            report(&mut table, "coloring", &format!("fixed {m}"), &run);
        }
        let (space, op) = ColoringOp::new(g.clone());
        let run = drive(
            &op,
            &space,
            op.initial_tasks(),
            HybridController::new(HybridParams {
                rho,
                m_max: 4096,
                ..HybridParams::default()
            }),
            2,
        );
        report(&mut table, "coloring", "hybrid", &run);
        let mut op = op;
        ColoringOp::validate(&g, &op.colors()).expect("proper colouring");
    }

    // --- Boruvka MST ---------------------------------------------------
    {
        let g = gen::random_with_avg_degree(5_000, 8.0, &mut rng);
        let wg = WeightedGraph::random(g, &mut rng);
        let (kw, kc) = wg.kruskal();
        for &m in &fixed {
            let (space, op) = BoruvkaOp::new(&wg);
            let run = drive(&op, &space, op.initial_tasks(), FixedController::new(m), 3);
            report(&mut table, "boruvka", &format!("fixed {m}"), &run);
        }
        let (space, op) = BoruvkaOp::new(&wg);
        let run = drive(
            &op,
            &space,
            op.initial_tasks(),
            HybridController::new(HybridParams {
                rho,
                m_max: 4096,
                ..HybridParams::default()
            }),
            3,
        );
        report(&mut table, "boruvka", "hybrid", &run);
        let mut op = op;
        assert_eq!(op.msf(), (kw, kc), "MSF must match Kruskal");
    }

    // --- SSSP (chaotic relaxation) --------------------------------------
    {
        let g = gen::random_with_avg_degree(20_000, 8.0, &mut rng);
        let input = SsspInput::random(g, 0, 1000, &mut rng);
        let reference = input.dijkstra();
        for &m in &fixed {
            let (space, op) = SsspOp::new(input.clone());
            let run = drive(&op, &space, op.initial_tasks(), FixedController::new(m), 5);
            report(&mut table, "sssp", &format!("fixed {m}"), &run);
        }
        let (space, op) = SsspOp::new(input);
        let run = drive(
            &op,
            &space,
            op.initial_tasks(),
            HybridController::new(HybridParams {
                rho,
                m_max: 4096,
                ..HybridParams::default()
            }),
            5,
        );
        report(&mut table, "sssp", "hybrid", &run);
        let mut op = op;
        assert_eq!(op.distances(), reference, "SSSP must match Dijkstra");
    }

    // --- Delaunay refinement -------------------------------------------
    {
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        pts.extend((0..100).map(|_| Point::new(rng.random::<f64>(), rng.random::<f64>())));
        let mesh = Mesh::delaunay(&pts);
        let cfg = RefineConfig::area_only(2e-4);
        for &m in &fixed {
            let (space, mut op) = DelaunayOp::with_auto_capacity(&mesh, cfg);
            let tasks = op.initial_tasks();
            let run = drive(&op, &space, tasks, FixedController::new(m), 4);
            report(&mut table, "delaunay", &format!("fixed {m}"), &run);
        }
        let (space, mut op) = DelaunayOp::with_auto_capacity(&mesh, cfg);
        let tasks = op.initial_tasks();
        let run = drive(
            &op,
            &space,
            tasks,
            HybridController::new(HybridParams {
                rho,
                m_max: 4096,
                ..HybridParams::default()
            }),
            4,
        );
        report(&mut table, "delaunay", "hybrid", &run);
        let out = op.into_mesh();
        out.check_valid().expect("valid mesh");
        assert_eq!(optpar_apps::delaunay::bad_count(&out, cfg), 0);
    }

    // --- Agglomerative clustering ----------------------------------------
    {
        // 2000 points. k = 16: "one cluster per blob" below needs each
        // blob's k-NN candidate graph connected, which k = 8 does not
        // guarantee for a 125-point Gaussian blob.
        let pts = blobs(16, 125, 500.0, 2.0, &mut rng);
        for &m in &fixed {
            let (space, op) = ClusteringOp::new(pts.clone(), 16, 20.0);
            let run = drive(&op, &space, op.initial_tasks(), FixedController::new(m), 6);
            report(&mut table, "clustering", &format!("fixed {m}"), &run);
        }
        let (space, op) = ClusteringOp::new(pts, 16, 20.0);
        let run = drive(
            &op,
            &space,
            op.initial_tasks(),
            HybridController::new(HybridParams {
                rho,
                m_max: 4096,
                ..HybridParams::default()
            }),
            6,
        );
        report(&mut table, "clustering", "hybrid", &run);
        let mut op = op;
        op.validate().expect("valid clustering partition");
        assert_eq!(op.final_clusters().len(), 16, "one cluster per blob");
    }

    // --- Survey propagation ---------------------------------------------
    {
        let f = Formula::random_3sat(2000, 4000, &mut rng); // α = 2
        for &m in &fixed {
            let (space, op) = SurveyOp::new(f.clone(), 1e-7, 0.5);
            let run = drive(&op, &space, op.initial_tasks(), FixedController::new(m), 7);
            report(&mut table, "survey-prop", &format!("fixed {m}"), &run);
        }
        let (space, op) = SurveyOp::new(f, 1e-7, 0.5);
        let run = drive(
            &op,
            &space,
            op.initial_tasks(),
            HybridController::new(HybridParams {
                rho,
                m_max: 4096,
                ..HybridParams::default()
            }),
            7,
        );
        report(&mut table, "survey-prop", "hybrid", &run);
        let mut op = op;
        let max_eta = op
            .surveys()
            .iter()
            .flat_map(|e| e.iter())
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(max_eta < 1e-4, "α = 2 must reach the paramagnetic point");
    }

    println!("TAB-RT: end-to-end runtime comparison, ρ = 25%, workers = default");
    table.print("§5 — adaptive allocation inside the real speculative runtime");
}

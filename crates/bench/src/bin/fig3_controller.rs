//! **FIG3** — reproduce Fig. 3 of the paper: controller trajectories
//! `m_t` on two random CC graphs with `n = 2000`, target `ρ = 20%`,
//! `m₀ = 2`, comparing the hybrid Algorithm 1 against a controller
//! using only Recurrence A.
//!
//! Expected shape: the hybrid converges to the operating point `μ`
//! within ~15 rounds and stays stable; A-only creeps up over many more
//! rounds. Both settle near the same `μ`.
//!
//! Usage: `cargo run --release -p optpar-bench --bin fig3_controller
//! [rounds] [--csv]`

use optpar_bench::{downsample, f, sparkline, Table, SEED};
use optpar_core::control::{HybridController, HybridParams, RecurrenceA, RecurrenceParams};
use optpar_core::estimate;
use optpar_core::sim::{run_loop, SimTrace, StaticGraphPlant};
use optpar_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let n = 2000;
    let rho = 0.20;
    let mut rng = StdRng::seed_from_u64(SEED);

    // Two graphs with different degree, hence different μ (the paper's
    // two panels: steady state above and below m = 20-ish scale).
    let configs = [("graph-A (d=16)", 16.0), ("graph-B (d=64)", 64.0)];

    for (label, d) in configs {
        let g = gen::random_with_avg_degree(n, d, &mut rng);
        let mu = estimate::find_mu(&g, rho, 800, &mut rng);

        let mut hybrid = HybridController::new(HybridParams {
            rho,
            ..HybridParams::default()
        });
        let mut plant = StaticGraphPlant::new(g.clone());
        let tr_h = run_loop(&mut plant, &mut hybrid, rounds, &mut rng);

        let mut a_only = RecurrenceA::new(RecurrenceParams {
            rho,
            ..RecurrenceParams::default()
        });
        let mut plant = StaticGraphPlant::new(g);
        let tr_a = run_loop(&mut plant, &mut a_only, rounds, &mut rng);

        let mut table = Table::new(["t", "m_hybrid", "r_hybrid", "m_rec_a", "r_rec_a"]);
        for t in 0..rounds {
            table.row([
                t.to_string(),
                tr_h.steps[t].m.to_string(),
                f(tr_h.steps[t].r, 3),
                tr_a.steps[t].m.to_string(),
                f(tr_a.steps[t].r, 3),
            ]);
        }
        table.print(&format!("Fig. 3 — {label}, ρ = 20%, μ ≈ {mu}"));

        let conv = |tr: &SimTrace| {
            tr.convergence_round(mu, 0.25, 4)
                .map(|c| c.to_string())
                .unwrap_or_else(|| "never".into())
        };
        println!(
            "{label}: μ ≈ {mu} | hybrid converged at t = {} (steady m = {:.0}) | A-only at t = {} (steady m = {:.0})",
            conv(&tr_h),
            tr_h.steady_m(rounds / 4),
            conv(&tr_a),
            tr_a.steady_m(rounds / 4),
        );
        let as_f64 = |v: Vec<usize>| v.into_iter().map(|m| m as f64).collect::<Vec<_>>();
        println!(
            "  m_t hybrid: {}\n  m_t rec-A : {}",
            sparkline(&downsample(&as_f64(tr_h.m_series()), 72)),
            sparkline(&downsample(&as_f64(tr_a.m_series()), 72)),
        );
    }
}

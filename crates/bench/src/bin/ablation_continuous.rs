//! **TAB-CONT** (ablation) — round-synchronous vs continuous execution:
//! how much of the measured conflict ratio comes from the model's
//! round co-residency (committed tasks blocking the rest of the round)
//! versus genuine temporal overlap.
//!
//! Round mode realizes the paper's `r̄(m)` exactly; continuous mode
//! keeps a budget of `m` tasks in flight and releases locks at commit,
//! so its conflict ratio at the same `m` is lower and the adaptive
//! controller consequently sustains a *larger* allocation for the same
//! target ρ — free parallelism the round model leaves on the table.
//!
//! Caveat: conflicts in continuous mode require *hardware* overlap.
//! On a single-CPU host the measured continuous conflict ratio is
//! ≈ 0 regardless of budget (tasks almost never truly interleave), so
//! the controller opens the budget wide — read the continuous rows as
//! a lower bound that grows with real core counts.
//!
//! Usage: `cargo run --release -p optpar-bench --bin
//! ablation_continuous [--csv]`

use optpar_apps::ccmirror::CcMirror;
use optpar_bench::{f, pct, Table, SEED};
use optpar_core::control::HybridController;
use optpar_graph::gen;
use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, LockSpace, WorkSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(n: usize, d: f64, seed: u64) -> (LockSpace, CcMirror) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::random_with_avg_degree(n, d, &mut rng);
    let mut b = LockSpace::builder();
    let layout = CcMirror::layout(&g, &mut b);
    let space = b.build();
    let mirror = layout.finish(&space);
    (space, mirror)
}

fn main() {
    let n = 4000;
    let workers = 4;

    let mut table = Table::new(["mode", "allocation", "steady/overall r", "committed"]);

    // Fixed allocations, round mode: drain the whole work-set once.
    for &m in &[64usize, 256] {
        let (space, op) = build(n, 12.0, SEED);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(SEED + 1);
        let mut ws = WorkSet::from_vec((0..n as u32).collect::<Vec<_>>());
        let mut ctl = optpar_core::control::FixedController::new(m);
        let run = ex.run_with_controller(&mut ws, &mut ctl, 1_000_000, &mut rng);
        table.row([
            "round".to_string(),
            format!("fixed {m}"),
            pct(run.overall_conflict_ratio()),
            run.total_committed().to_string(),
        ]);
    }
    // Fixed allocations, continuous mode.
    for &m in &[64usize, 256] {
        let (space, op) = build(n, 12.0, SEED);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(SEED + 1);
        let mut ws = WorkSet::from_vec((0..n as u32).collect::<Vec<_>>());
        let mut ctl = optpar_core::control::FixedController::new(m);
        let run = ex.run_continuous(&mut ws, &mut ctl, 128, 10_000_000, &mut rng);
        table.row([
            "continuous".to_string(),
            format!("budget {m}"),
            pct(run.overall_conflict_ratio()),
            run.total_committed().to_string(),
        ]);
    }
    // Adaptive in both modes.
    {
        let (space, op) = build(n, 12.0, SEED);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(SEED + 2);
        let mut ws = WorkSet::from_vec((0..n as u32).collect::<Vec<_>>());
        let mut ctl = HybridController::with_rho(0.25);
        let run = ex.run_with_controller(&mut ws, &mut ctl, 1_000_000, &mut rng);
        let tail = run.rounds.len() / 2;
        let steady: f64 = run.rounds[tail..].iter().map(|r| r.m as f64).sum::<f64>()
            / (run.rounds.len() - tail).max(1) as f64;
        table.row([
            "round".to_string(),
            format!("hybrid (steady m = {})", f(steady, 0)),
            pct(run.overall_conflict_ratio()),
            run.total_committed().to_string(),
        ]);
    }
    {
        let (space, op) = build(n, 12.0, SEED);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(SEED + 2);
        let mut ws = WorkSet::from_vec((0..n as u32).collect::<Vec<_>>());
        let mut ctl = HybridController::with_rho(0.25);
        let run = ex.run_continuous(&mut ws, &mut ctl, 128, 10_000_000, &mut rng);
        let tail = run.rounds.len() / 2;
        let steady: f64 = run.rounds[tail..].iter().map(|r| r.m as f64).sum::<f64>()
            / (run.rounds.len() - tail).max(1) as f64;
        table.row([
            "continuous".to_string(),
            format!("hybrid (steady m = {})", f(steady, 0)),
            pct(run.overall_conflict_ratio()),
            run.total_committed().to_string(),
        ]);
    }

    println!(
        "TAB-CONT: round vs continuous execution, CC-mirror on n = {n}, d = 12, {workers} workers"
    );
    table.print("ablation — what round co-residency costs");
}

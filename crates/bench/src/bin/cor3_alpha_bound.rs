//! **TAB-C3** — validate Cor. 3: with `m = α·n/(d+1)` launched nodes,
//! the conflict ratio is bounded by `1 − (1/α)[1 − (1 − α/(d+1))^{d+1}]
//! ≤ 1 − (1 − e^{−α})/α`, for *every* graph of matched (n, d).
//!
//! Includes the smart-start guarantee: at `α = ½` the bound is ≈ 21.3%,
//! which is what licenses initializing the controller at
//! `m₀ = n/(2(d+1))`.
//!
//! Usage: `cargo run --release -p optpar-bench --bin cor3_alpha_bound
//! [trials] [--csv]`

use optpar_bench::{f, pct, Table, SEED};
use optpar_core::{estimate, theory};
use optpar_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let mut rng = StdRng::seed_from_u64(SEED);
    let (n, d) = (1020usize, 16usize);
    let worst = gen::clique_union(n, d);
    let random = gen::random_with_avg_degree(n, d as f64, &mut rng);
    let s = n / (d + 1);

    let mut table = Table::new([
        "alpha",
        "m",
        "bound (finite d)",
        "bound (limit)",
        "measured K_d^n",
        "measured random",
        "within_bound",
    ]);
    for &alpha in &[0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let m = ((alpha * s as f64).round() as usize).clamp(1, n);
        let b_fin = theory::rbar_alpha_bound(alpha, d);
        let b_lim = theory::rbar_alpha_limit(alpha);
        let r_worst = estimate::conflict_ratio_mc(&worst, m, trials, &mut rng);
        let r_rand = estimate::conflict_ratio_mc(&random, m, trials, &mut rng);
        let ok = r_worst.mean <= b_fin + r_worst.ci95() + 1e-9
            && r_rand.mean <= b_fin + r_rand.ci95() + 1e-9;
        table.row([
            f(alpha, 2),
            m.to_string(),
            pct(b_fin),
            pct(b_lim),
            pct(r_worst.mean),
            pct(r_rand.mean),
            ok.to_string(),
        ]);
    }
    println!("TAB-C3: Cor. 3 α-parametric bound, n = {n}, d = {d}, s = {s}, {trials} trials/point");
    table.print("Cor. 3 — r̄(αs) vs bound");
    println!(
        "\nSmart start: bound at α = ½ is {} (paper: ≤ 21.3%), so m₀ = n/(2(d+1)) = {} is safe.",
        pct(theory::rbar_alpha_limit(0.5)),
        optpar_core::control::smart_initial_m(n, d as f64),
    );
}

//! Million-node scale harness (`BENCH_scale.json`).
//!
//! Sweeps app × graph × shard layout × executor mode × workers over
//! *large* generated inputs (R-MAT, diagonal grid, road-network-like;
//! the flagship graphs exceed 10⁶ nodes) and reports, per cell:
//!
//! * committed tasks / second (end-to-end, graph + partition build
//!   excluded — those are one-time input costs shared by every cell);
//! * the partition's **cut fraction** (cut edges / edges), the static
//!   proxy for cross-shard traffic;
//! * the measured **cross-shard acquire fraction** from the runtime's
//!   shard-crossing counters (`obs` builds; `null` otherwise) — the
//!   dynamic ground truth the cut fraction is supposed to predict.
//!
//! Every cell runs the *sharded* store code path with `k = 8` shards;
//! the two layouts differ only in the partition that feeds
//! [`ShardMap`]:
//!
//! * `rr`  — round-robin parts (`v mod k`): the "unpartitioned"
//!   baseline. Locality-blind, cut fraction ≈ (k−1)/k.
//! * `bfs` — BFS-grown parts from [`optpar_core::partition`]; the
//!   pipelined executor additionally places tasks partition-affine.
//!
//! The headline acceptance check (printed and recorded in the JSON):
//! on each app's flagship graph the partitioned runs' cross-shard
//! acquire fraction must undercut the round-robin baseline's cut
//! fraction — i.e. partitioning moved real lock traffic, not just a
//! static statistic, off the shard boundaries.
//!
//! Every run is oracle-verified (SSSP against sequential Dijkstra;
//! cc-mirror counters all-ones) before its row is emitted.
//!
//! Usage: `scale [--smoke] [--csv]` — `--smoke` shrinks the graphs to
//! ~10⁵ nodes for CI; the committed `BENCH_scale.json` comes from a
//! full (no-flag) run with `--features obs`.

use optpar_apps::ccmirror::CcMirror;
use optpar_apps::sssp::{SsspInput, SsspOp};
use optpar_bench::{f, pct, Table, SEED};
use optpar_core::control::FixedController;
use optpar_core::partition::{bfs_partition, round_robin, Partition};
use optpar_graph::{gen, ConflictGraph, CsrGraph};
use optpar_runtime::{
    ConflictPolicy, Executor, ExecutorConfig, LockSpace, PipelinedConfig, ShardMap, WorkSet,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Shard count — fixed and decoupled from the worker count so the
/// layout comparison is not confounded by parallelism.
const SHARDS: usize = 8;
/// Tasks drawn per round in pooled mode.
const POOLED_M: usize = 2048;
/// In-flight budget in pipelined mode.
const PIPE_BUDGET: usize = 2048;
/// Allowed partition imbalance for the BFS partitioner.
const IMBALANCE: f64 = 1.25;

/// One measured cell of the sweep.
struct Row {
    app: &'static str,
    graph: String,
    nodes: usize,
    edges: usize,
    /// `"rr"` (round-robin baseline) or `"bfs"` (BFS partition).
    layout: &'static str,
    /// `"pooled"` (round-barrier) or `"pipelined"`.
    mode: &'static str,
    workers: usize,
    committed: usize,
    elapsed: f64,
    /// Static cut fraction of the partition backing this cell.
    cut_fraction: f64,
    /// `(shard-homed acquires, crossings)` from the lock space
    /// (`obs` builds only).
    cross: Option<(u64, u64)>,
    verified: bool,
}

impl Row {
    fn commits_per_s(&self) -> f64 {
        self.committed as f64 / self.elapsed.max(1e-9)
    }

    /// Crossings / acquires; `None` without `obs`.
    fn cross_fraction(&self) -> Option<f64> {
        self.cross
            .map(|(a, c)| if a == 0 { 0.0 } else { c as f64 / a as f64 })
    }
}

fn shard_counts(space: &LockSpace) -> Option<(u64, u64)> {
    #[cfg(feature = "obs")]
    {
        return Some(space.shard_counts());
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = space;
        None
    }
}

/// Drain a work-set to quiescence in the requested mode and return the
/// committed count. In pipelined mode with the BFS layout, tasks are
/// placed partition-affine (the runtime wraps the part id modulo the
/// worker count); everywhere else the executor's defaults (uniform
/// draw / round-robin spawn) apply.
fn drain<O: optpar_runtime::Operator>(
    ex: &Executor<'_, O>,
    ws: &mut WorkSet<O::Task>,
    affine: bool,
    mode: &'static str,
    seed: u64,
    part_of: impl Fn(&O::Task) -> usize + Sync,
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    match mode {
        "pooled" => {
            let mut committed = 0;
            let mut rounds = 0usize;
            while !ws.is_empty() {
                committed += ex.run_round(ws, POOLED_M, &mut rng).committed;
                rounds += 1;
                assert!(rounds < 100_000_000, "pooled run did not quiesce");
            }
            committed
        }
        "pipelined" => {
            let mut ctl = FixedController::new(PIPE_BUDGET);
            let cfg = PipelinedConfig {
                window: 1024,
                batch: 64,
                ..PipelinedConfig::default()
            };
            let run = if affine {
                let place = move |t: &O::Task| part_of(t);
                ex.run_pipelined_placed(ws, &mut ctl, cfg, &mut rng, Some(&place))
            } else {
                ex.run_pipelined(ws, &mut ctl, cfg, &mut rng)
            };
            assert!(ws.is_empty(), "pipelined run did not quiesce");
            run.total_committed()
        }
        other => unreachable!("unknown mode {other}"),
    }
}

/// One SSSP cell: sharded store from `part`, drain, verify against the
/// precomputed Dijkstra `reference`.
#[allow(clippy::too_many_arguments)]
fn run_sssp(
    input: &SsspInput,
    gname: &str,
    part: &Partition,
    layout: &'static str,
    mode: &'static str,
    workers: usize,
    reference: &[u64],
    seed: u64,
) -> Row {
    let map = Arc::new(ShardMap::from_parts(&part.parts, part.k));
    let (space, op) = SsspOp::new_sharded(input.clone(), map);
    let ex = Executor::new(
        &op,
        &space,
        ExecutorConfig {
            workers,
            policy: ConflictPolicy::FirstWins,
            ..ExecutorConfig::default()
        },
    );
    let mut ws = WorkSet::from_vec(op.initial_tasks());
    let parts = part.parts.clone();
    let t0 = Instant::now();
    let committed = drain(&ex, &mut ws, layout == "bfs", mode, seed, move |t: &u32| {
        parts[*t as usize] as usize
    });
    let elapsed = t0.elapsed().as_secs_f64();
    space.check_all_free().expect("locks must quiesce");
    let cross = shard_counts(&space);
    let mut op = op;
    let verified = op.distances() == reference;
    Row {
        app: "sssp",
        graph: gname.to_string(),
        nodes: input.graph.node_count(),
        edges: input.graph.edge_count(),
        layout,
        mode,
        workers,
        committed,
        elapsed,
        cut_fraction: part.cut_fraction(),
        cross,
        verified,
    }
}

/// One cc-mirror cell: every node is a task; verify all-ones counters
/// (exactly-once commit with full rollback of losers).
fn run_cc(
    g: &CsrGraph,
    gname: &str,
    part: &Partition,
    layout: &'static str,
    mode: &'static str,
    workers: usize,
    seed: u64,
) -> Row {
    let mut b = LockSpace::builder();
    let lay = CcMirror::layout_sharded(g, &mut b, &part.parts, part.k);
    let space = b.build();
    let op = lay.finish(&space);
    let ex = Executor::new(
        &op,
        &space,
        ExecutorConfig {
            workers,
            policy: ConflictPolicy::FirstWins,
            ..ExecutorConfig::default()
        },
    );
    let n = g.node_count();
    let mut ws = WorkSet::from_vec((0..n as u32).collect::<Vec<_>>());
    let parts = part.parts.clone();
    let t0 = Instant::now();
    let committed = drain(&ex, &mut ws, layout == "bfs", mode, seed, move |t: &u32| {
        parts[*t as usize] as usize
    });
    let elapsed = t0.elapsed().as_secs_f64();
    space.check_all_free().expect("locks must quiesce");
    let cross = shard_counts(&space);
    let mut nd = op.node_data;
    let verified = committed == n && nd.snapshot().iter().all(|&c| c == 1);
    Row {
        app: "ccmirror",
        graph: gname.to_string(),
        nodes: n,
        edges: g.edge_count(),
        layout,
        mode,
        workers,
        committed,
        elapsed,
        cut_fraction: part.cut_fraction(),
        cross,
        verified,
    }
}

/// Per-app locality verdict on the flagship (largest) graph.
struct Locality {
    app: &'static str,
    graph: String,
    /// Static cut fraction of the round-robin baseline layout.
    cut_rr: f64,
    /// Static cut fraction of the BFS partition.
    cut_bfs: f64,
    /// Worst (max) measured cross-shard fraction over partitioned runs.
    cross_bfs_max: Option<f64>,
    /// Best (min) measured cross-shard fraction over baseline runs.
    cross_rr_min: Option<f64>,
}

impl Locality {
    /// The acceptance gate: partitioned dynamic crossings undercut the
    /// baseline's static cut fraction. `None` without `obs` counters.
    fn gate_ok(&self) -> Option<bool> {
        self.cross_bfs_max.map(|x| x < self.cut_rr)
    }
}

fn locality_for(rows: &[Row], app: &'static str, graph: &str) -> Locality {
    let sel: Vec<&Row> = rows
        .iter()
        .filter(|r| r.app == app && r.graph == graph)
        .collect();
    let cut = |layout: &str| {
        sel.iter()
            .find(|r| r.layout == layout)
            .map(|r| r.cut_fraction)
            .unwrap_or(f64::NAN)
    };
    let cross = |layout: &str, max: bool| {
        let mut vals: Vec<f64> = sel
            .iter()
            .filter(|r| r.layout == layout)
            .filter_map(|r| r.cross_fraction())
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if max {
            vals.last().copied()
        } else {
            vals.first().copied()
        }
    };
    Locality {
        app,
        graph: graph.to_string(),
        cut_rr: cut("rr"),
        cut_bfs: cut("bfs"),
        cross_bfs_max: cross("bfs", true),
        cross_rr_min: cross("rr", false),
    }
}

fn opt_json(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.6}")).unwrap_or_else(|| "null".into())
}

fn to_json(smoke: bool, rows: &[Row], locality: &[Locality]) -> String {
    let nproc = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"scale\",");
    let _ = writeln!(s, "  \"seed\": {SEED},");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"shards\": {SHARDS},");
    let _ = writeln!(s, "  \"pooled_m\": {POOLED_M},");
    let _ = writeln!(s, "  \"pipelined_budget\": {PIPE_BUDGET},");
    let _ = writeln!(s, "  \"nproc\": {nproc},");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let (acq, crs) = match r.cross {
            Some((a, c)) => (a.to_string(), c.to_string()),
            None => ("null".into(), "null".into()),
        };
        let _ = write!(
            s,
            "    {{\"app\": \"{}\", \"graph\": \"{}\", \"nodes\": {}, \
             \"edges\": {}, \"layout\": \"{}\", \"mode\": \"{}\", \
             \"workers\": {}, \"committed\": {}, \"elapsed_s\": {:.6}, \
             \"commits_per_s\": {:.1}, \"cut_fraction\": {:.6}, \
             \"shard_acquires\": {}, \"shard_crossings\": {}, \
             \"cross_fraction\": {}, \"verified\": {}}}",
            r.app,
            r.graph,
            r.nodes,
            r.edges,
            r.layout,
            r.mode,
            r.workers,
            r.committed,
            r.elapsed,
            r.commits_per_s(),
            r.cut_fraction,
            acq,
            crs,
            opt_json(r.cross_fraction()),
            r.verified,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"locality\": [\n");
    for (i, l) in locality.iter().enumerate() {
        let gate = l
            .gate_ok()
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".into());
        let _ = write!(
            s,
            "    {{\"app\": \"{}\", \"graph\": \"{}\", \"cut_rr\": {:.6}, \
             \"cut_bfs\": {:.6}, \"cross_bfs_max\": {}, \
             \"cross_rr_min\": {}, \"gate_cross_below_rr_cut\": {}}}",
            l.app,
            l.graph,
            l.cut_rr,
            l.cut_bfs,
            opt_json(l.cross_bfs_max),
            opt_json(l.cross_rr_min),
            gate,
        );
        s.push_str(if i + 1 < locality.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut rng = StdRng::seed_from_u64(SEED);

    // Second-named graph per app is the flagship (the locality gate
    // runs there; in full mode it has ≥ 2²⁰ nodes).
    eprintln!("[scale] generating graphs (smoke={smoke})...");
    let sssp_graphs: Vec<(String, CsrGraph)> = if smoke {
        vec![
            ("rmat14".into(), gen::rmat(14, 8, SEED)),
            ("grid320".into(), gen::grid2d_diag(320, 320)),
        ]
    } else {
        vec![
            ("rmat18".into(), gen::rmat(18, 8, SEED)),
            ("grid1024".into(), gen::grid2d_diag(1024, 1024)),
        ]
    };
    let cc_graphs: Vec<(String, CsrGraph)> = if smoke {
        vec![
            ("rmat14".into(), gen::rmat(14, 8, SEED)),
            ("road100k".into(), gen::road_like(100_000, SEED)),
        ]
    } else {
        vec![
            ("rmat18".into(), gen::rmat(18, 8, SEED)),
            ("road1m".into(), gen::road_like(1 << 20, SEED)),
        ]
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut cell = 0usize;

    for (gname, g) in &sssp_graphs {
        let part_rr = round_robin(g, SHARDS);
        let part_bfs = bfs_partition(g, SHARDS, IMBALANCE);
        let input = SsspInput::random(g.clone(), 0, 1000, &mut rng);
        eprintln!(
            "[scale] sssp/{gname}: n={} m={} cut_rr={:.3} cut_bfs={:.3}; dijkstra...",
            g.node_count(),
            g.edge_count(),
            part_rr.cut_fraction(),
            part_bfs.cut_fraction()
        );
        let reference = input.dijkstra();
        for (layout, part) in [("rr", &part_rr), ("bfs", &part_bfs)] {
            for mode in ["pooled", "pipelined"] {
                for workers in [1usize, 4] {
                    cell += 1;
                    let row = run_sssp(
                        &input,
                        gname,
                        part,
                        layout,
                        mode,
                        workers,
                        &reference,
                        SEED ^ cell as u64,
                    );
                    assert!(row.verified, "sssp/{gname}/{layout}/{mode}/w{workers} failed oracle");
                    eprintln!(
                        "[scale]   {layout}/{mode}/w{workers}: {:.1} commits/s ({:.2}s)",
                        row.commits_per_s(),
                        row.elapsed
                    );
                    rows.push(row);
                }
            }
        }
    }

    for (gname, g) in &cc_graphs {
        let part_rr = round_robin(g, SHARDS);
        let part_bfs = bfs_partition(g, SHARDS, IMBALANCE);
        eprintln!(
            "[scale] ccmirror/{gname}: n={} m={} cut_rr={:.3} cut_bfs={:.3}",
            g.node_count(),
            g.edge_count(),
            part_rr.cut_fraction(),
            part_bfs.cut_fraction()
        );
        for (layout, part) in [("rr", &part_rr), ("bfs", &part_bfs)] {
            for mode in ["pooled", "pipelined"] {
                for workers in [1usize, 4] {
                    cell += 1;
                    let row = run_cc(g, gname, part, layout, mode, workers, SEED ^ cell as u64);
                    assert!(
                        row.verified,
                        "ccmirror/{gname}/{layout}/{mode}/w{workers} failed oracle"
                    );
                    eprintln!(
                        "[scale]   {layout}/{mode}/w{workers}: {:.1} commits/s ({:.2}s)",
                        row.commits_per_s(),
                        row.elapsed
                    );
                    rows.push(row);
                }
            }
        }
    }

    let mut table = Table::new([
        "app", "graph", "nodes", "layout", "mode", "w", "commits/s", "cut", "cross",
    ]);
    for r in &rows {
        table.row([
            r.app.to_string(),
            r.graph.clone(),
            r.nodes.to_string(),
            r.layout.to_string(),
            r.mode.to_string(),
            r.workers.to_string(),
            f(r.commits_per_s(), 0),
            pct(r.cut_fraction),
            r.cross_fraction().map(pct).unwrap_or_else(|| "-".into()),
        ]);
    }
    table.print("scale sweep (k=8 shards)");

    let locality: Vec<Locality> = vec![
        locality_for(&rows, "sssp", &sssp_graphs[1].0),
        locality_for(&rows, "ccmirror", &cc_graphs[1].0),
    ];
    println!("\n== locality gate (flagship graphs) ==");
    let mut all_ok = true;
    for l in &locality {
        let verdict = match l.gate_ok() {
            Some(true) => "PASS",
            Some(false) => {
                all_ok = false;
                "FAIL"
            }
            None => "SKIP (build without `obs`: no crossing counters)",
        };
        println!(
            "{}/{}: cross(bfs) max {} < cut(rr) {} ... {verdict}   [cut(bfs) {}]",
            l.app,
            l.graph,
            l.cross_bfs_max.map(pct).unwrap_or_else(|| "-".into()),
            pct(l.cut_rr),
            pct(l.cut_bfs),
        );
    }

    let json = to_json(smoke, &rows, &locality);
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("\nwrote BENCH_scale.json ({} rows)", rows.len());
    assert!(all_ok, "locality gate failed: partitioned runs crossed shards more than the round-robin cut fraction");
}

//! **FIG2** — reproduce Fig. 2 of the paper: the conflict ratio
//! `r̄(m)` for graphs with `n = 2000`, `d = 16`:
//!
//! (i)   the worst-case upper bound (Cor. 2, plus the exact Thm. 3
//!       curve it approximates),
//! (ii)  a uniform random graph (Monte-Carlo),
//! (iii) a union of cliques and disconnected nodes (Monte-Carlo).
//!
//! Expected shape: all three share the initial slope `d/(2(n−1))`
//! (Prop. 2); the random graph's curve keeps rising toward 1, the
//! clique union saturates lower, and the bound dominates both.
//!
//! Usage: `cargo run --release -p optpar-bench --bin fig2_conflict_ratio
//! [trials] [--csv]`

use optpar_bench::{f, pct, Table, SEED};
use optpar_core::{estimate, theory};
use optpar_graph::{gen, ConflictGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);
    let (n, d) = (2000usize, 16usize);
    let mut rng = StdRng::seed_from_u64(SEED);

    // (ii) random graph with average degree d.
    let random = gen::random_with_avg_degree(n, d as f64, &mut rng);
    // (iii) union of cliques (half the nodes, in cliques of size d+1)
    // and disconnected nodes, matched to average degree d:
    // cliques of size 2d+1 over half the nodes give average degree d.
    let k = 2 * d + 1;
    let cliques = n / 2 / k;
    let iso = n - cliques * k;
    let union = gen::cliques_plus_isolated(cliques, k, iso);

    let ms: Vec<usize> = (1..=40).map(|i| i * n / 40).collect();
    let mut table = Table::new([
        "m",
        "bound_cor2",
        "bound_thm3_exact",
        "random_graph",
        "rand_ci95",
        "cliques_union",
        "union_ci95",
    ]);
    for &m in &ms {
        let r_rand = estimate::conflict_ratio_mc(&random, m, trials, &mut rng);
        let r_union = estimate::conflict_ratio_mc(&union, m, trials, &mut rng);
        table.row([
            m.to_string(),
            f(theory::rbar_worst_asymptotic(n, d, m), 4),
            f(theory::rbar_worst_exact(n, d, m), 4),
            f(r_rand.mean, 4),
            f(r_rand.ci95(), 4),
            f(r_union.mean, 4),
            f(r_union.ci95(), 4),
        ]);
    }
    println!(
        "FIG2: r̄(m) for n = {n}, d = 16 (random graph actual d = {:.2}, union d = {:.2}), {trials} trials/point",
        random.average_degree(),
        union.average_degree()
    );
    table.print("Fig. 2 — conflict ratio curves");

    // Prop. 2 cross-check: initial slope of every curve.
    let slope = theory::initial_slope(n, d as f64);
    println!(
        "\nProp. 2: Δr̄(1) = d/(2(n−1)) = {} — all curves share it at m→1.",
        pct(slope)
    );
}

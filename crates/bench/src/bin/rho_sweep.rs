//! **TAB-RHO** — Remark 1: sweep the target conflict ratio ρ and
//! report the steady-state allocation, the achieved conflict ratio,
//! and the work efficiency on a fixed random graph.
//!
//! Expected shape: larger ρ buys more parallelism (larger steady m) at
//! lower efficiency; the paper recommends ρ ∈ [20%, 30%], and ρ → 0
//! collapses the allocation toward m_min (why ρ = 0 is ruled out).
//!
//! Usage: `cargo run --release -p optpar-bench --bin rho_sweep
//! [rounds] [--csv]`

use optpar_bench::{f, pct, Table, SEED};
use optpar_core::control::{HybridController, HybridParams};
use optpar_core::estimate;
use optpar_core::sim::{run_loop, StaticGraphPlant};
use optpar_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(600);
    let mut rng = StdRng::seed_from_u64(SEED);
    let (n, d) = (2000usize, 16.0);
    let g = gen::random_with_avg_degree(n, d, &mut rng);

    let mut table = Table::new([
        "rho",
        "mu(rho)",
        "steady_m",
        "steady_r",
        "efficiency",
        "commits/round",
    ]);
    for &rho in &[0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50] {
        let mu = estimate::find_mu(&g, rho, 600, &mut rng);
        let mut ctl = HybridController::new(HybridParams {
            rho,
            m_max: 8192,
            ..HybridParams::default()
        });
        let mut plant = StaticGraphPlant::new(g.clone());
        let tr = run_loop(&mut plant, &mut ctl, rounds, &mut rng);
        let tail = rounds / 2;
        let commits: f64 = tr.steps[rounds - tail..]
            .iter()
            .map(|s| s.committed as f64)
            .sum::<f64>()
            / tail as f64;
        table.row([
            pct(rho),
            mu.to_string(),
            f(tr.steady_m(tail), 1),
            pct(tr.steady_r(tail)),
            pct(1.0 - tr.steady_r(tail)),
            f(commits, 1),
        ]);
    }
    println!("TAB-RHO: target sweep on n = {n}, d = {d}, {rounds} rounds each");
    table.print("Remark 1 — choosing ρ: parallelism vs efficiency");
}

//! **EX1** — reproduce Example 1 of the paper: on
//! `G = K_{n²} ∪ D_n` every maximal independent set has size `n + 1`,
//! yet launching `n + 1` uniformly random nodes commits only ≈ 2 on
//! average — expected-MIS size wildly over-predicts exploitable
//! parallelism.
//!
//! Usage: `cargo run --release -p optpar-bench --bin ex1_clique_trap
//! [trials] [--csv]`

use optpar_bench::{f, Table, SEED};
use optpar_core::estimate;
use optpar_graph::{gen, mis, ConflictGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut table = Table::new([
        "n",
        "|V| = n²+n",
        "max_IS",
        "E[commits @ m=n+1]",
        "ci95",
        "E[commits]/max_IS",
    ]);
    for n in [4usize, 8, 16, 32, 64] {
        let g = gen::clique_trap(n);
        let m = n + 1;
        // Sanity: every maximal IS has size exactly n + 1.
        let s = mis::greedy_random_mis(&g, &mut rng);
        assert_eq!(s.len(), n + 1);
        let em = estimate::em_m_mc(&g, m, trials, &mut rng);
        table.row([
            n.to_string(),
            g.node_count().to_string(),
            (n + 1).to_string(),
            f(em.mean, 3),
            f(em.ci95(), 3),
            f(em.mean / (n + 1) as f64, 3),
        ]);
    }
    println!("EX1: the clique trap K_{{n²}} ∪ D_n, {trials} trials/row");
    table.print("Example 1 — maximal IS size vs expected commits");
    println!(
        "\nPaper's claim: E[commits] → 2 as n grows, despite max IS = n+1.\n\
         (Expected independent survivors among m = n+1 uniform draws: ≈ 1 from\n\
         the clique + ≈ 1 from the n isolated nodes, since draws land in the\n\
         n² clique with probability n/(n+1).)"
    );
}

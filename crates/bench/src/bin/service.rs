//! **BENCH-SVC** — resilient job-service benchmark: closed-loop
//! multi-tenant load against one [`serve`] instance.
//!
//! A fleet of client threads submits a mixed workload (sssp, Boruvka,
//! Delaunay refinement) through the service's admission boundary; each
//! job drives its operator on the shared worker pool under its
//! priority slice of the global in-flight budget, verifies its result
//! against the app's sequential reference inside the job closure, and
//! reports back. The bench measures job throughput, p50/p99
//! admission-to-report latency, and shed behaviour, then (with
//! `--chaos`, requires `--features faults`) repeats the whole phase
//! under a deterministic ~10% injected-fault schedule and times how
//! long a probe job takes to complete after the burst — the service's
//! recovery figure.
//!
//! Emits `BENCH_service.json` (schema in EXPERIMENTS.md) next to the
//! invocation directory in addition to the text table. Exits non-zero
//! if any job's self-verification failed or a worker thread died —
//! the CI chaos gate.
//!
//! Usage: `cargo run --release -p optpar-bench --bin service
//! --features faults [--smoke] [--chaos]`

use optpar_apps::boruvka::{BoruvkaOp, WeightedGraph};
use optpar_apps::delaunay::{bad_count, DelaunayOp, RefineConfig};
use optpar_apps::geometry::Point;
use optpar_apps::sssp::{SsspInput, SsspOp};
use optpar_apps::triangulation::Mesh;
use optpar_bench::{f, Table, SEED};
use optpar_core::control::{HybridController, HybridParams};
use optpar_graph::gen;
use optpar_runtime::{
    serve, JobCx, JobOutput, JobSpec, Rejection, ServiceConfig, ServiceStats, WorkSet,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Workload scale: `--smoke` keeps CI fast, the default exercises the
/// queue and budget harder.
#[derive(Clone, Copy)]
struct Scale {
    clients: usize,
    jobs_per_client: usize,
    sssp_n: usize,
    boruvka_n: usize,
    delaunay_extra: usize,
}

const FULL: Scale = Scale {
    clients: 8,
    jobs_per_client: 4,
    sssp_n: 1500,
    boruvka_n: 1000,
    delaunay_extra: 60,
};

const SMOKE: Scale = Scale {
    clients: 4,
    jobs_per_client: 2,
    sssp_n: 500,
    boruvka_n: 400,
    delaunay_extra: 30,
};

fn controller() -> HybridController {
    HybridController::new(HybridParams {
        rho: 0.25,
        m_max: 2048,
        ..HybridParams::default()
    })
}

/// Per-attempt drive RNG: reproducible, distinct across retries.
fn drive_rng(seed: u64, attempt: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (u64::from(attempt) << 48))
}

/// sssp job: random graph, drive the speculative relaxation, compare
/// against Dijkstra.
fn sssp_job(n: usize, seed: u64) -> JobSpec {
    JobSpec::new(format!("sssp-{seed:x}"), move |cx: &mut JobCx<'_>| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_with_avg_degree(n, 6.0, &mut rng);
        let input = SsspInput::random(g, 0, 100, &mut rng);
        let reference = input.dijkstra();
        let (space, op) = SsspOp::new(input);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut ctl = controller();
        cx.drive(
            &op,
            &space,
            &mut ws,
            &mut ctl,
            &mut drive_rng(seed, cx.attempt()),
        )?;
        let mut op = op;
        Ok(JobOutput {
            verified: op.distances() == reference,
            committed: 0,
            detail: format!("sssp n={n}"),
        })
    })
}

/// Boruvka job: random weighted graph, compare the speculative forest
/// weight against Kruskal.
fn boruvka_job(n: usize, seed: u64) -> JobSpec {
    JobSpec::new(format!("boruvka-{seed:x}"), move |cx: &mut JobCx<'_>| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_with_avg_degree(n, 6.0, &mut rng);
        let wg = WeightedGraph::random(g, &mut rng);
        let reference = wg.kruskal();
        let (space, op) = BoruvkaOp::new(&wg);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut ctl = controller();
        cx.drive(
            &op,
            &space,
            &mut ws,
            &mut ctl,
            &mut drive_rng(seed, cx.attempt()),
        )?;
        let mut op = op;
        Ok(JobOutput {
            verified: op.msf() == reference,
            committed: 0,
            detail: format!("boruvka n={n}"),
        })
    })
}

/// Delaunay refinement job: refine until no bad triangles remain,
/// then check mesh validity and conservation of total area.
fn delaunay_job(extra: usize, seed: u64) -> JobSpec {
    JobSpec::new(format!("delaunay-{seed:x}"), move |cx: &mut JobCx<'_>| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        pts.extend((0..extra).map(|_| Point::new(rng.random::<f64>(), rng.random::<f64>())));
        let mesh = Mesh::delaunay(&pts);
        let cfg = RefineConfig::area_only(1e-3);
        let (space, mut op) = DelaunayOp::with_auto_capacity(&mesh, cfg);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut ctl = controller();
        cx.drive(
            &op,
            &space,
            &mut ws,
            &mut ctl,
            &mut drive_rng(seed, cx.attempt()),
        )?;
        let refined = op.into_mesh();
        let verified = refined.check_valid().is_ok()
            && bad_count(&refined, cfg) == 0
            && (refined.total_area() - 1.0).abs() < 1e-6;
        Ok(JobOutput {
            verified,
            committed: 0,
            detail: format!("delaunay extra={extra}"),
        })
    })
}

/// Build job `j` of client `c`: kinds rotate so every client runs a
/// mixed tenancy, seeds are unique per (phase, client, job).
fn make_job(scale: Scale, phase_salt: u64, c: usize, j: usize) -> JobSpec {
    let seed = SEED ^ phase_salt ^ ((c as u64) << 20) ^ ((j as u64) << 8);
    let spec = match (c + j) % 3 {
        0 => sssp_job(scale.sssp_n, seed),
        1 => boruvka_job(scale.boruvka_n, seed),
        _ => delaunay_job(scale.delaunay_extra, seed),
    };
    // Tenants get different budget weights; priority shares are part
    // of the surface under load.
    spec.priority(1 + (c as u64 % 3))
}

/// One finished job as the client fleet saw it.
struct JobRow {
    ok: bool,
    verified: bool,
    latency: Duration,
    attempts: u32,
    rounds: usize,
}

/// One measured phase (clean or chaos) of the closed-loop load.
struct PhaseResult {
    label: &'static str,
    jobs: usize,
    completed: usize,
    failed: usize,
    unverified: usize,
    elapsed: Duration,
    latencies: Vec<Duration>,
    max_attempts: u32,
    total_rounds: usize,
    recovery: Option<Duration>,
    stats: ServiceStats,
}

impl PhaseResult {
    fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((self.latencies.len() as f64 - 1.0) * p).round() as usize;
        self.latencies[idx.min(self.latencies.len() - 1)]
    }

    fn shed_rate(&self) -> f64 {
        let shed = self.stats.rejected_backpressure + self.stats.rejected_overload;
        let seen = self.stats.admitted + shed + self.stats.rejected_expired;
        if seen == 0 {
            0.0
        } else {
            shed as f64 / seen as f64
        }
    }
}

/// Drive one full closed-loop phase: `scale.clients` threads each
/// submit `scale.jobs_per_client` mixed jobs and block on the report
/// (re-submitting on shed), then — in a chaos phase — a probe job
/// times recovery after the burst.
fn run_phase(
    label: &'static str,
    cfg: ServiceConfig,
    scale: Scale,
    phase_salt: u64,
    probe_recovery: bool,
) -> PhaseResult {
    let rows: Mutex<Vec<JobRow>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    let ((elapsed, recovery), stats) = serve(cfg, |svc| {
        std::thread::scope(|s| {
            for c in 0..scale.clients {
                let rows = &rows;
                s.spawn(move || {
                    for j in 0..scale.jobs_per_client {
                        // Closed loop with client-side retry on shed:
                        // backpressure and overload are the service
                        // asking us to slow down, not errors.
                        let report = loop {
                            match svc.submit(make_job(scale, phase_salt, c, j)) {
                                Ok(ticket) => break ticket.wait(),
                                Err(Rejection::Backpressure) => {
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(Rejection::Overload) => {
                                    std::thread::sleep(Duration::from_millis(5));
                                }
                                Err(Rejection::Expired) => {
                                    unreachable!("bench jobs carry no deadline")
                                }
                            }
                        };
                        let verified = matches!(
                            &report.result,
                            Ok(out) if out.verified
                        );
                        rows.lock().expect("client rows").push(JobRow {
                            ok: report.result.is_ok(),
                            verified,
                            latency: report.latency,
                            attempts: report.attempts,
                            rounds: report.rounds,
                        });
                    }
                });
            }
        });
        let elapsed = t0.elapsed();
        // Recovery probe: after the chaos burst has fully drained, how
        // long until the service completes a fresh job end-to-end?
        let recovery = probe_recovery.then(|| {
            let p0 = Instant::now();
            let ticket = loop {
                match svc.submit(make_job(SMOKE, phase_salt ^ 0xF00D, 0, 0)) {
                    Ok(t) => break t,
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            };
            let report = ticket.wait();
            assert!(
                matches!(&report.result, Ok(out) if out.verified),
                "recovery probe failed: {:?}",
                report.result
            );
            p0.elapsed()
        });
        (elapsed, recovery)
    });
    let rows = rows.into_inner().expect("client rows");
    let jobs = rows.len();
    let completed = rows.iter().filter(|r| r.ok).count();
    let unverified = rows.iter().filter(|r| r.ok && !r.verified).count();
    let mut latencies: Vec<Duration> = rows.iter().map(|r| r.latency).collect();
    latencies.sort_unstable();
    PhaseResult {
        label,
        jobs,
        completed,
        failed: jobs - completed,
        unverified,
        elapsed,
        latencies,
        max_attempts: rows.iter().map(|r| r.attempts).max().unwrap_or(0),
        total_rounds: rows.iter().map(|r| r.rounds).sum(),
        recovery,
        stats,
    }
}

fn service_config(scale: Scale) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        lanes: if scale.clients >= 8 { 3 } else { 2 },
        queue_cap: 8,
        global_budget: 512,
        ..ServiceConfig::default()
    }
}

fn to_json(smoke: bool, chaos_rate: Option<f64>, phases: &[PhaseResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"service\",");
    let _ = writeln!(s, "  \"seed\": {SEED},");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    match chaos_rate {
        Some(r) => {
            let _ = writeln!(s, "  \"chaos_rate\": {r},");
        }
        None => {
            let _ = writeln!(s, "  \"chaos_rate\": null,");
        }
    }
    s.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let _ = writeln!(s, "    {{\"phase\": \"{}\",", p.label);
        let _ = writeln!(
            s,
            "     \"jobs\": {}, \"completed\": {}, \"failed\": {}, \
             \"unverified\": {},",
            p.jobs, p.completed, p.failed, p.unverified
        );
        let _ = writeln!(
            s,
            "     \"elapsed_s\": {:.6}, \"throughput_jobs_per_s\": {:.3},",
            p.elapsed.as_secs_f64(),
            p.throughput()
        );
        let _ = writeln!(
            s,
            "     \"p50_ms\": {:.3}, \"p99_ms\": {:.3},",
            p.percentile(0.50).as_secs_f64() * 1e3,
            p.percentile(0.99).as_secs_f64() * 1e3
        );
        let _ = writeln!(
            s,
            "     \"shed_rate\": {:.4}, \"shed_backpressure\": {}, \
             \"shed_overload\": {},",
            p.shed_rate(),
            p.stats.rejected_backpressure,
            p.stats.rejected_overload
        );
        let _ = writeln!(
            s,
            "     \"job_retries\": {}, \"max_attempts\": {}, \
             \"rounds\": {}, \"wedges\": {}, \"pool_swaps\": {},",
            p.stats.job_retries, p.max_attempts, p.total_rounds, p.stats.wedges, p.stats.pool_swaps
        );
        let _ = writeln!(
            s,
            "     \"worker_panics\": {}, \"live_workers\": {}, \
             \"final_pressure\": {:.4},",
            p.stats.worker_panics, p.stats.live_workers, p.stats.pressure
        );
        match p.recovery {
            Some(r) => {
                let _ = writeln!(s, "     \"recovery_ms\": {:.3},", r.as_secs_f64() * 1e3);
            }
            None => {
                let _ = writeln!(s, "     \"recovery_ms\": null,");
            }
        }
        let _ = write!(s, "     \"obs_events\": {}}}", obs_events(&p.stats));
        s.push_str(if i + 1 < phases.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(feature = "obs")]
fn obs_events(stats: &ServiceStats) -> String {
    match &stats.obs_log {
        Some(log) => log.events.len().to_string(),
        None => "null".to_string(),
    }
}

#[cfg(not(feature = "obs"))]
fn obs_events(_stats: &ServiceStats) -> String {
    "null".to_string()
}

fn main() {
    // Injected panics are contained and accounted by the executor;
    // skip the default hook's per-panic backtrace so chaos runs stay
    // readable.
    #[cfg(feature = "faults")]
    optpar_runtime::silence_injected_panics();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let chaos = args.iter().any(|a| a == "--chaos");
    let scale = if smoke { SMOKE } else { FULL };

    let mut phases: Vec<PhaseResult> = Vec::new();
    #[cfg_attr(not(feature = "faults"), allow(unused_mut))]
    let mut chaos_rate: Option<f64> = None;

    #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
    let mut cfg = service_config(scale);
    #[cfg(feature = "obs")]
    {
        cfg.obs = true;
    }
    phases.push(run_phase("clean", cfg.clone(), scale, 0x11, false));

    if chaos {
        #[cfg(feature = "faults")]
        {
            // ~10% total injection: panics and spurious aborts at 5%
            // each, replayable from the fixed seed.
            let rate = 0.05;
            chaos_rate = Some(2.0 * rate);
            let mut ccfg = cfg.clone();
            ccfg.chaos = Some(optpar_runtime::ChaosConfig::with_rates(SEED, rate));
            phases.push(run_phase("chaos", ccfg, scale, 0x22, true));
        }
        #[cfg(not(feature = "faults"))]
        eprintln!("--chaos ignored: build with --features faults to inject faults");
    }

    let mut table = Table::new([
        "phase",
        "jobs",
        "ok",
        "fail",
        "jobs/s",
        "p50 ms",
        "p99 ms",
        "shed",
        "retries",
        "recovery ms",
    ]);
    for p in &phases {
        table.row([
            p.label.to_string(),
            p.jobs.to_string(),
            p.completed.to_string(),
            p.failed.to_string(),
            f(p.throughput(), 2),
            f(p.percentile(0.50).as_secs_f64() * 1e3, 2),
            f(p.percentile(0.99).as_secs_f64() * 1e3, 2),
            f(p.shed_rate(), 3),
            p.stats.job_retries.to_string(),
            p.recovery
                .map_or_else(|| "-".to_string(), |r| f(r.as_secs_f64() * 1e3, 2)),
        ]);
    }
    table.print("job service under closed-loop multi-tenant load");

    let json = to_json(smoke, chaos_rate, &phases);
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\nwrote BENCH_service.json");

    // CI gate: every job verified (or failed structured), no worker
    // thread ever died, and the clean phase completed everything.
    let mut bad = false;
    for p in &phases {
        if p.unverified > 0 {
            eprintln!(
                "FAIL[{}]: {} job(s) failed self-verification",
                p.label, p.unverified
            );
            bad = true;
        }
        if p.stats.worker_panics > 0 {
            eprintln!(
                "FAIL[{}]: {} worker panic(s) escaped",
                p.label, p.stats.worker_panics
            );
            bad = true;
        }
        if p.label == "clean" && p.failed > 0 {
            eprintln!("FAIL[clean]: {} job(s) failed without chaos", p.failed);
            bad = true;
        }
    }
    if bad {
        std::process::exit(1);
    }
}

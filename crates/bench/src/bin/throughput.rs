//! **BENCH-RT** — round-throughput microbenchmark for the persistent
//! worker pool and the asynchronous pipelined executor.
//!
//! Sweeps `workers × {pooled, scoped, pipelined} × {delaunay, boruvka,
//! sssp}` at a small fixed allocation (`m = 32`, the regime where
//! per-round overhead dominates) and reports rounds/s, tasks/s, and
//! commit throughput. `pooled` is [`Executor::run_round`] (persistent
//! parked threads, chunked claiming, epoch-bump barrier); `scoped` is
//! [`Executor::run_round_scoped`], the previous
//! spawn-threads-every-round implementation retained as the baseline;
//! `pipelined` is [`Executor::run_pipelined`] (barrier-free sliding
//! epoch window, `m` reinterpreted as an in-flight budget — for it,
//! "rounds" counts window flushes). Every drain also carries a
//! [`PhaseClock`], so each row reports how its thread time splits
//! across draw / execute / commit / wait (barrier rendezvous or
//! window idling).
//!
//! Emits `BENCH_runtime.json` (schema in EXPERIMENTS.md) next to the
//! invocation directory in addition to the text table.
//!
//! With `--obs` (requires building the bench crate with `--features
//! obs`) each app is additionally drained twice at a fixed worker
//! count — recorder detached vs. recorder attached — and the
//! obs-on/obs-off rounds-per-second ratio is folded into the JSON as
//! `obs_overhead_rounds_per_s`. The *detached* arm is the production
//! configuration of an obs build (probes compiled in, every one a
//! `None` check); comparing its main table against a no-feature
//! build's pins the ≤2% compiled-probe budget. The *attached* arm
//! prices the full event stream itself, which on microsecond-scale
//! rounds (sssp at `m = 32`: ~300 events per ~20µs round) is
//! dominated by the barrier drain and costs tens of percent — that
//! is the price of tracing, not of the probes (DESIGN.md §13).
//!
//! Usage: `cargo run --release -p optpar-bench --bin throughput
//! [--smoke] [--obs]`

use optpar_apps::boruvka::{BoruvkaOp, WeightedGraph};
use optpar_apps::delaunay::{DelaunayOp, RefineConfig};
use optpar_apps::geometry::Point;
use optpar_apps::sssp::{SsspInput, SsspOp};
use optpar_apps::triangulation::Mesh;
use optpar_bench::{f, Table, SEED};
use optpar_core::control::{FixedController, HybridController, HybridParams};
use optpar_core::footprint::{footprint_for, parse_footprints, smart_m_from_contract};
use optpar_graph::{gen, ConflictGraph};
use optpar_runtime::{
    Executor, ExecutorConfig, LockSpace, Operator, Phase, PhaseBreakdown, PhaseClock,
    PipelinedConfig, WorkSet,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Which executor a measurement used.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Persistent pool: `run_round`.
    Pooled,
    /// Per-round `std::thread::scope` baseline: `run_round_scoped`.
    Scoped,
    /// Barrier-free sliding epoch window: `run_pipelined`.
    Pipelined,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Pooled => "pooled",
            Mode::Scoped => "scoped",
            Mode::Pipelined => "pipelined",
        }
    }
}

const MODES: [Mode; 3] = [Mode::Pooled, Mode::Scoped, Mode::Pipelined];

/// One measured configuration.
struct Row {
    app: &'static str,
    mode: Mode,
    workers: usize,
    rounds: usize,
    launched: usize,
    committed: usize,
    secs: f64,
    phases: PhaseBreakdown,
}

impl Row {
    fn rounds_per_s(&self) -> f64 {
        self.rounds as f64 / self.secs
    }
    fn tasks_per_s(&self) -> f64 {
        self.launched as f64 / self.secs
    }
    fn commits_per_s(&self) -> f64 {
        self.committed as f64 / self.secs
    }
}

/// The fixed per-round allocation: small enough that per-round
/// overhead dominates — the regime the pool exists for.
const M: usize = 32;

/// Safety valve so a non-draining workload fails loudly instead of
/// spinning forever.
const MAX_ROUNDS: usize = 1_000_000;

/// Pipelined sliding-window length (completions between controller
/// observations) and per-draw batch size. The window roughly matches
/// the round cadence at `m = 32` so the controller observes at a
/// comparable rate; the batch amortises the shard lock and the
/// lane-bump retire while keeping each lane's held-lock footprint small
/// (larger batches measurably raise intra-batch conflict aborts on
/// boruvka).
const PIPE_WINDOW: usize = 128;
const PIPE_BATCH: usize = 4;

/// Drain a workload with fixed allocation [`M`] `reps` times (fresh
/// app state each rep — drains are destructive), timing each whole
/// drain and splitting thread time across phases. Keeps the rep with
/// the best commit throughput: the same min-noise estimator as the
/// obs A/B, which matters doubly on the shared single-CPU bench host
/// where any rep can lose a timeslice to the rest of the system.
fn drain<O, F>(
    app: &'static str,
    make: F,
    mode: Mode,
    workers: usize,
    seed: u64,
    reps: usize,
) -> Row
where
    O: Operator,
    F: Fn() -> (LockSpace, O, Vec<O::Task>),
{
    let mut best: Option<Row> = None;
    for _ in 0..reps.max(1) {
        let (space, op, tasks) = make();
        let clock = PhaseClock::new();
        let mut ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                ..ExecutorConfig::default()
            },
        );
        ex.set_phase_clock(&clock);
        let mut ws = WorkSet::from_vec(tasks);
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut rounds, mut launched, mut committed) = (0usize, 0usize, 0usize);
        let t0 = Instant::now();
        match mode {
            Mode::Pipelined => {
                let mut ctl = FixedController::new(M);
                let run = ex.run_pipelined(
                    &mut ws,
                    &mut ctl,
                    PipelinedConfig {
                        window: PIPE_WINDOW,
                        batch: PIPE_BATCH,
                        max_completions: MAX_ROUNDS * M,
                    },
                    &mut rng,
                );
                rounds = run.round_count();
                launched = run.total_launched();
                committed = run.total_committed();
            }
            _ => {
                while !ws.is_empty() && rounds < MAX_ROUNDS {
                    let rs = match mode {
                        Mode::Pooled => ex.run_round(&mut ws, M, &mut rng),
                        _ => ex.run_round_scoped(&mut ws, M, &mut rng),
                    };
                    rounds += 1;
                    launched += rs.launched;
                    committed += rs.committed;
                }
            }
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        assert!(
            ws.is_empty(),
            "{app}/{}/w{workers} did not drain",
            mode.name()
        );
        let row = Row {
            app,
            mode,
            workers,
            rounds,
            launched,
            committed,
            secs,
            phases: clock.snapshot(),
        };
        if best
            .as_ref()
            .is_none_or(|b| row.commits_per_s() > b.commits_per_s())
        {
            best = Some(row);
        }
    }
    best.expect("reps >= 1")
}

/// The blessed static footprint manifest, baked in at compile time so
/// the smart-start A/B always reflects HEAD's contracts.
const FOOTPRINT_TOML: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../FOOTPRINT.toml"));

/// One arm of the smart-start A/B: a controller-driven drain from a
/// given `m₀`.
struct SmartArm {
    m0: usize,
    rounds: usize,
    rps: f64,
    /// First round (1-based) whose pressure ratio landed within ±0.1
    /// of the controller's target ρ — the convergence metric. `None`
    /// if the drain finished without ever entering the band.
    converge: Option<usize>,
}

/// Smart-start A/B for one app: Cor. 3 `m₀` seeded from the static
/// conflict-radius contract vs. the paper's default `m₀ = 2`.
struct SmartAb {
    app: &'static str,
    workers: usize,
    /// Declared radius d̂, `None` for an unbounded contract (the
    /// static analysis promises nothing; the smart arm is skipped and
    /// the runtime falls back to the baseline `m₀`).
    radius: Option<u32>,
    baseline: SmartArm,
    smart: Option<SmartArm>,
}

/// Drain a workload under the hybrid controller starting from `m0`,
/// `reps` times; keep the best-rounds/s rep (min-noise, as `drain`).
fn drain_hybrid<O, F>(make: &F, workers: usize, m0: usize, seed: u64, reps: usize) -> SmartArm
where
    O: Operator,
    F: Fn() -> (LockSpace, O, Vec<O::Task>),
{
    let mut best: Option<SmartArm> = None;
    for _ in 0..reps.max(1) {
        let (space, op, tasks) = make();
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                ..ExecutorConfig::default()
            },
        );
        let params = HybridParams {
            m0,
            ..HybridParams::default()
        };
        let rho = params.rho;
        let mut ctl = HybridController::new(params);
        let mut ws = WorkSet::from_vec(tasks);
        let mut rng = StdRng::seed_from_u64(seed);
        let t0 = Instant::now();
        let run = ex.run_with_controller(&mut ws, &mut ctl, MAX_ROUNDS, &mut rng);
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        assert!(ws.is_empty(), "smart-start drain did not finish");
        let converge = run
            .rounds
            .iter()
            .position(|rs| (rs.pressure_ratio() - rho).abs() <= 0.1)
            .map(|i| i + 1);
        let arm = SmartArm {
            m0,
            rounds: run.rounds.len(),
            rps: run.rounds.len() as f64 / secs,
            converge,
        };
        if best.as_ref().is_none_or(|b| arm.rps > b.rps) {
            best = Some(arm);
        }
    }
    best.expect("reps >= 1")
}

/// One obs-on/obs-off A/B measurement: rounds/s with the recorder
/// detached vs. attached, best of `reps` drains each.
struct ObsAb {
    app: &'static str,
    workers: usize,
    off_rps: f64,
    on_rps: f64,
}

impl ObsAb {
    /// Tracing overhead as a percentage of obs-off throughput
    /// (positive = obs is slower).
    fn overhead_pct(&self) -> f64 {
        (self.off_rps / self.on_rps - 1.0) * 100.0
    }
}

/// Drain the same workload `reps` times per arm — recorder off, then
/// on — and keep each arm's best rounds/s (min-noise estimator).
#[cfg(feature = "obs")]
fn drain_ab<O, F>(app: &'static str, make: F, workers: usize, seed: u64, reps: usize) -> ObsAb
where
    O: Operator,
    F: Fn() -> (LockSpace, O, Vec<O::Task>),
{
    let mut off_rps = 0.0f64;
    let mut on_rps = 0.0f64;
    for _ in 0..reps {
        for obs_on in [false, true] {
            let (space, op, tasks) = make();
            let mut ex = Executor::new(
                &op,
                &space,
                ExecutorConfig {
                    workers,
                    ..ExecutorConfig::default()
                },
            );
            if obs_on {
                ex.enable_obs(optpar_runtime::obs::ObsConfig::default());
            }
            let mut ws = WorkSet::from_vec(tasks);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut rounds = 0usize;
            let t0 = Instant::now();
            while !ws.is_empty() && rounds < MAX_ROUNDS {
                let _ = ex.run_round(&mut ws, M, &mut rng);
                rounds += 1;
            }
            let rps = rounds as f64 / t0.elapsed().as_secs_f64().max(1e-9);
            assert!(ws.is_empty(), "{app}/obs_{obs_on}/w{workers} did not drain");
            if obs_on {
                on_rps = on_rps.max(rps);
            } else {
                off_rps = off_rps.max(rps);
            }
        }
    }
    ObsAb {
        app,
        workers,
        off_rps,
        on_rps,
    }
}

/// Render the measurements as `BENCH_runtime.json` (no serde in the
/// tree; the schema is flat enough to emit by hand).
fn to_json(
    smoke: bool,
    rows: &[Row],
    speedups: &[(String, f64)],
    pipe_scaling: &[(String, f64)],
    smart_ab: &[SmartAb],
    obs_ab: &[ObsAb],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"runtime_throughput\",");
    let _ = writeln!(s, "  \"seed\": {SEED},");
    let _ = writeln!(s, "  \"m\": {M},");
    let _ = writeln!(s, "  \"pipelined_window\": {PIPE_WINDOW},");
    let _ = writeln!(s, "  \"pipelined_batch\": {PIPE_BATCH},");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"app\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \
             \"rounds\": {}, \"launched\": {}, \"committed\": {}, \
             \"elapsed_s\": {:.6}, \"rounds_per_s\": {:.1}, \
             \"tasks_per_s\": {:.1}, \"commits_per_s\": {:.1}, \
             \"phase_ns\": {{\"draw\": {}, \"execute\": {}, \
             \"commit\": {}, \"wait\": {}}}}}",
            r.app,
            r.mode.name(),
            r.workers,
            r.rounds,
            r.launched,
            r.committed,
            r.secs,
            r.rounds_per_s(),
            r.tasks_per_s(),
            r.commits_per_s(),
            r.phases.draw_ns,
            r.phases.execute_ns,
            r.phases.commit_ns,
            r.phases.wait_ns,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"pooled_vs_scoped_rounds_per_s\": {\n");
    for (i, (key, v)) in speedups.iter().enumerate() {
        let _ = write!(s, "    \"{key}\": {v:.2}");
        s.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    s.push_str("  },\n");
    s.push_str("  \"pipelined_scaling_vs_w1_commits_per_s\": {\n");
    for (i, (key, v)) in pipe_scaling.iter().enumerate() {
        let _ = write!(s, "    \"{key}\": {v:.2}");
        s.push_str(if i + 1 < pipe_scaling.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  },\n");
    s.push_str("  \"smart_start_ab\": {\n");
    if !smart_ab.is_empty() {
        s.push_str(
            "    \"_note\": \"hybrid-controller drains: m0 = 2 (paper default) vs \
             m0 from the static conflict-radius contract in FOOTPRINT.toml \
             (Cor. 3 over the 2r-ball conflict degree). radius = null means the \
             contract is unbounded and the smart arm falls back to the baseline. \
             converge_round = first round with pressure within 0.1 of rho\",\n",
        );
    }
    for (i, ab) in smart_ab.iter().enumerate() {
        let arm = |a: &SmartArm| {
            format!(
                "{{\"m0\": {}, \"rounds\": {}, \"rounds_per_s\": {:.1}, \
                 \"converge_round\": {}}}",
                a.m0,
                a.rounds,
                a.rps,
                a.converge.map_or("null".to_string(), |c| c.to_string()),
            )
        };
        let _ = write!(
            s,
            "    \"{}/w{}\": {{\"radius\": {}, \"baseline\": {}, \"smart\": {}}}",
            ab.app,
            ab.workers,
            ab.radius.map_or("null".to_string(), |r| r.to_string()),
            arm(&ab.baseline),
            ab.smart.as_ref().map_or("null".to_string(), arm),
        );
        s.push_str(if i + 1 < smart_ab.len() { ",\n" } else { "\n" });
    }
    s.push_str("  },\n");
    s.push_str("  \"obs_overhead_rounds_per_s\": {\n");
    if !obs_ab.is_empty() {
        s.push_str(
            "    \"_note\": \"obs_off = obs build with the recorder detached \
             (compiled probes only; the <=2% budget configuration), obs_on = \
             recorder attached (prices the full event stream, dominated by \
             the barrier drain on microsecond-scale rounds)\",\n",
        );
    }
    for (i, ab) in obs_ab.iter().enumerate() {
        let _ = write!(
            s,
            "    \"{}/w{}\": {{\"obs_off\": {:.1}, \"obs_on\": {:.1}, \
             \"overhead_pct\": {:.2}}}",
            ab.app,
            ab.workers,
            ab.off_rps,
            ab.on_rps,
            ab.overhead_pct(),
        );
        s.push_str(if i + 1 < obs_ab.len() { ",\n" } else { "\n" });
    }
    s.push_str("  }\n}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let obs = std::env::args().any(|a| a == "--obs");
    let worker_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    // Best-of-`reps` per configuration (see `drain`).
    let reps = if smoke { 2 } else { 3 };
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut rows: Vec<Row> = Vec::new();

    // Fresh app state per measured configuration (drains are
    // destructive), same seeds throughout so workloads are comparable.

    // --- Delaunay refinement -------------------------------------------
    {
        let npts = if smoke { 60 } else { 250 };
        let area = if smoke { 1e-3 } else { 2e-4 };
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        pts.extend((0..npts).map(|_| Point::new(rng.random::<f64>(), rng.random::<f64>())));
        let mesh = Mesh::delaunay(&pts);
        let cfg = RefineConfig::area_only(area);
        for &workers in worker_counts {
            for mode in MODES {
                let make = || {
                    let (space, mut op) = DelaunayOp::with_auto_capacity(&mesh, cfg);
                    let tasks = op.initial_tasks();
                    (space, op, tasks)
                };
                rows.push(drain("delaunay", make, mode, workers, 4, reps));
            }
        }
    }

    // --- Boruvka MST ---------------------------------------------------
    {
        let n = if smoke { 400 } else { 3000 };
        let g = gen::random_with_avg_degree(n, 8.0, &mut rng);
        let wg = WeightedGraph::random(g, &mut rng);
        for &workers in worker_counts {
            for mode in MODES {
                let make = || {
                    let (space, op) = BoruvkaOp::new(&wg);
                    let tasks = op.initial_tasks();
                    (space, op, tasks)
                };
                rows.push(drain("boruvka", make, mode, workers, 3, reps));
            }
        }
    }

    // --- SSSP (chaotic relaxation) -------------------------------------
    {
        let n = if smoke { 1500 } else { 10_000 };
        let g = gen::random_with_avg_degree(n, 8.0, &mut rng);
        let input = SsspInput::random(g, 0, 1000, &mut rng);
        for &workers in worker_counts {
            for mode in MODES {
                let make = || {
                    let (space, op) = SsspOp::new(input.clone());
                    let tasks = op.initial_tasks();
                    (space, op, tasks)
                };
                rows.push(drain("sssp", make, mode, workers, 5, reps));
            }
        }
    }

    // --- Report --------------------------------------------------------
    let mut table = Table::new([
        "app",
        "mode",
        "workers",
        "rounds",
        "committed",
        "elapsed_s",
        "rounds/s",
        "tasks/s",
        "commits/s",
        "draw%",
        "exec%",
        "commit%",
        "wait%",
    ]);
    let pct = |p: &PhaseBreakdown, ph: Phase| format!("{:.0}", p.share(ph) * 100.0);
    for r in &rows {
        table.row([
            r.app.to_string(),
            r.mode.name().to_string(),
            r.workers.to_string(),
            r.rounds.to_string(),
            r.committed.to_string(),
            f(r.secs, 4),
            f(r.rounds_per_s(), 0),
            f(r.tasks_per_s(), 0),
            f(r.commits_per_s(), 0),
            pct(&r.phases, Phase::Draw),
            pct(&r.phases, Phase::Execute),
            pct(&r.phases, Phase::Commit),
            pct(&r.phases, Phase::Wait),
        ]);
    }
    println!(
        "BENCH-RT: pooled vs scoped vs pipelined, m = {M}{}",
        if smoke { " (smoke)" } else { "" }
    );
    table.print("throughput: barrier rounds (pooled/scoped) vs sliding-window pipelined");

    // Pooled-over-scoped speedup in rounds/s, per (app, workers).
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for pooled in rows.iter().filter(|r| r.mode == Mode::Pooled) {
        if let Some(scoped) = rows
            .iter()
            .find(|r| r.mode == Mode::Scoped && r.app == pooled.app && r.workers == pooled.workers)
        {
            speedups.push((
                format!("{}/w{}", pooled.app, pooled.workers),
                pooled.rounds_per_s() / scoped.rounds_per_s(),
            ));
        }
    }
    println!("\npooled/scoped rounds-per-second ratio:");
    for (key, v) in &speedups {
        println!("  {key:<16} {v:>6.2}x");
    }

    // Pipelined multi-worker scaling: commits/s at each worker count
    // over the same app's single-worker pipelined drain. > 1.0 means
    // the sliding window actually buys parallel throughput.
    let mut pipe_scaling: Vec<(String, f64)> = Vec::new();
    for r in rows
        .iter()
        .filter(|r| r.mode == Mode::Pipelined && r.workers > 1)
    {
        if let Some(base) = rows
            .iter()
            .find(|b| b.mode == Mode::Pipelined && b.app == r.app && b.workers == 1)
        {
            pipe_scaling.push((
                format!("{}/w{}", r.app, r.workers),
                r.commits_per_s() / base.commits_per_s(),
            ));
        }
    }
    println!("\npipelined commits-per-second scaling vs w1:");
    for (key, v) in &pipe_scaling {
        println!("  {key:<16} {v:>6.2}x");
    }

    // --- Smart-start A/B (static radius contract → Cor. 3 m₀) ----------
    // Baseline: hybrid controller from the paper's default m₀ = 2.
    // Smart: m₀ seeded from FOOTPRINT.toml via the 2r-ball conflict
    // degree. Unbounded contracts (boruvka, delaunay) have no smart arm
    // — the bench reports the fallback so the JSON shows which apps the
    // static analysis can and cannot help.
    let mut smart_ab: Vec<SmartAb> = Vec::new();
    {
        let contracts = parse_footprints(FOOTPRINT_TOML);
        let ab_workers = 4;
        let ab_reps = if smoke { 2 } else { 3 };
        let mut ab_rng = StdRng::seed_from_u64(SEED);
        // sssp: bounded contract (radius 1).
        {
            let n = if smoke { 1500 } else { 10_000 };
            let g = gen::random_with_avg_degree(n, 8.0, &mut ab_rng);
            let avg_degree = g.average_degree();
            let input = SsspInput::random(g, 0, 1000, &mut ab_rng);
            let make = || {
                let (space, op) = SsspOp::new(input.clone());
                let tasks = op.initial_tasks();
                (space, op, tasks)
            };
            let fp = footprint_for(&contracts, "SsspOp").expect("SsspOp in FOOTPRINT.toml");
            let radius = fp.bounded.then_some(fp.radius);
            let baseline = drain_hybrid(&make, ab_workers, 2, 5, ab_reps);
            let smart = smart_m_from_contract(n, avg_degree, fp)
                .map(|m0| drain_hybrid(&make, ab_workers, m0.clamp(2, 1024), 5, ab_reps));
            smart_ab.push(SmartAb {
                app: "sssp",
                workers: ab_workers,
                radius,
                baseline,
                smart,
            });
        }
        // boruvka: unbounded contract — fallback arm only.
        {
            let n = if smoke { 400 } else { 3000 };
            let g = gen::random_with_avg_degree(n, 8.0, &mut ab_rng);
            let avg_degree = g.average_degree();
            let wg = WeightedGraph::random(g, &mut ab_rng);
            let make = || {
                let (space, op) = BoruvkaOp::new(&wg);
                let tasks = op.initial_tasks();
                (space, op, tasks)
            };
            let fp = footprint_for(&contracts, "BoruvkaOp").expect("BoruvkaOp in FOOTPRINT.toml");
            let radius = fp.bounded.then_some(fp.radius);
            let baseline = drain_hybrid(&make, ab_workers, 2, 3, ab_reps);
            let smart = smart_m_from_contract(n, avg_degree, fp)
                .map(|m0| drain_hybrid(&make, ab_workers, m0.clamp(2, 1024), 3, ab_reps));
            smart_ab.push(SmartAb {
                app: "boruvka",
                workers: ab_workers,
                radius,
                baseline,
                smart,
            });
        }
        println!("\nsmart-start A/B (hybrid controller, w{ab_workers}, best of {ab_reps}):");
        for ab in &smart_ab {
            let rad = ab
                .radius
                .map_or("unbounded".to_string(), |r| format!("d\u{302} = {r}"));
            let conv = |a: &SmartArm| {
                a.converge
                    .map_or("never".to_string(), |c| format!("round {c}"))
            };
            match &ab.smart {
                Some(sm) => println!(
                    "  {:<10} {rad}: baseline m0={} {:>8.1} r/s (conv {}) | smart m0={} \
                     {:>8.1} r/s (conv {})",
                    ab.app,
                    ab.baseline.m0,
                    ab.baseline.rps,
                    conv(&ab.baseline),
                    sm.m0,
                    sm.rps,
                    conv(sm),
                ),
                None => println!(
                    "  {:<10} {rad}: baseline m0={} {:>8.1} r/s (conv {}) | smart arm \
                     skipped (no bounded contract)",
                    ab.app,
                    ab.baseline.m0,
                    ab.baseline.rps,
                    conv(&ab.baseline),
                ),
            }
        }
    }

    // --- Observability overhead A/B ------------------------------------
    #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
    let mut obs_ab: Vec<ObsAb> = Vec::new();
    if obs {
        #[cfg(not(feature = "obs"))]
        eprintln!(
            "--obs requested but the bench was built without `--features obs`; \
             skipping the A/B section"
        );
        #[cfg(feature = "obs")]
        {
            let reps = if smoke { 3 } else { 5 };
            let ab_workers = 4;
            let mut obs_rng = StdRng::seed_from_u64(SEED);
            {
                let npts = if smoke { 60 } else { 250 };
                let area = if smoke { 1e-3 } else { 2e-4 };
                let mut pts = vec![
                    Point::new(0.0, 0.0),
                    Point::new(1.0, 0.0),
                    Point::new(1.0, 1.0),
                    Point::new(0.0, 1.0),
                ];
                pts.extend(
                    (0..npts).map(|_| Point::new(obs_rng.random::<f64>(), obs_rng.random::<f64>())),
                );
                let mesh = Mesh::delaunay(&pts);
                let cfg = RefineConfig::area_only(area);
                obs_ab.push(drain_ab(
                    "delaunay",
                    || {
                        let (space, mut op) = DelaunayOp::with_auto_capacity(&mesh, cfg);
                        let tasks = op.initial_tasks();
                        (space, op, tasks)
                    },
                    ab_workers,
                    4,
                    reps,
                ));
            }
            {
                let n = if smoke { 400 } else { 3000 };
                let g = gen::random_with_avg_degree(n, 8.0, &mut obs_rng);
                let wg = WeightedGraph::random(g, &mut obs_rng);
                obs_ab.push(drain_ab(
                    "boruvka",
                    || {
                        let (space, op) = BoruvkaOp::new(&wg);
                        let tasks = op.initial_tasks();
                        (space, op, tasks)
                    },
                    ab_workers,
                    3,
                    reps,
                ));
            }
            {
                let n = if smoke { 1500 } else { 10_000 };
                let g = gen::random_with_avg_degree(n, 8.0, &mut obs_rng);
                let input = SsspInput::random(g, 0, 1000, &mut obs_rng);
                obs_ab.push(drain_ab(
                    "sssp",
                    || {
                        let (space, op) = SsspOp::new(input.clone());
                        let tasks = op.initial_tasks();
                        (space, op, tasks)
                    },
                    ab_workers,
                    5,
                    reps,
                ));
            }
            println!("\nobs-on vs obs-off rounds/s (best of {reps}, w{ab_workers}):");
            for ab in &obs_ab {
                println!(
                    "  {:<10} off {:>9.1}  on {:>9.1}  overhead {:>5.2}%",
                    ab.app,
                    ab.off_rps,
                    ab.on_rps,
                    ab.overhead_pct()
                );
            }
        }
    }

    let json = to_json(smoke, &rows, &speedups, &pipe_scaling, &smart_ab, &obs_ab);
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("\nwrote BENCH_runtime.json ({} configs)", rows.len());
}

//! Shared harness utilities for the experiment binaries and Criterion
//! benches.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4 and EXPERIMENTS.md) and prints aligned text tables plus
//! optional CSV (`--csv` flag) so the series can be re-plotted.

use std::fmt::Write as _;

/// The default seed every experiment starts from, so published numbers
/// are reproducible bit-for-bit.
pub const SEED: u64 = 0x5eed_0971;

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table body empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = width[i]);
            }
            out.pop();
            out.pop();
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Print the table (and CSV too when `--csv` was passed).
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
        if std::env::args().any(|a| a == "--csv") {
            println!("\n--- csv ---\n{}", self.to_csv());
        }
    }
}

/// Format a float with fixed precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Render a numeric series as a unicode sparkline (8 levels), so
/// controller trajectories can be eyeballed straight in the terminal.
///
/// Constant series render as a flat mid-level line; empty input gives
/// an empty string.
pub fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if series.is_empty() {
        return String::new();
    }
    let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    series
        .iter()
        .map(|&x| {
            let level = if span <= 0.0 {
                3
            } else {
                (((x - lo) / span) * 7.0).round() as usize
            };
            BARS[level.min(7)]
        })
        .collect()
}

/// Downsample a series to at most `width` points (bucket means) for
/// sparkline rendering.
pub fn downsample(series: &[f64], width: usize) -> Vec<f64> {
    assert!(width >= 1);
    if series.len() <= width {
        return series.to_vec();
    }
    (0..width)
        .map(|b| {
            let s = b * series.len() / width;
            let e = ((b + 1) * series.len() / width).max(s + 1);
            series[s..e].iter().sum::<f64>() / (e - s) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["m", "r"]);
        t.row(["1", "0.10"]).row(["100", "0.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('m') && lines[0].contains('r'));
        assert!(lines[3].contains("100"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.213), "21.3%");
    }

    #[test]
    fn sparkline_levels() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert_eq!(s.chars().next(), Some('\u{2581}'));
        assert_eq!(s.chars().last(), Some('\u{2588}'));
        // Constant series: flat, mid-level.
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert!(flat.chars().all(|c| c == '\u{2584}'));
    }

    #[test]
    fn downsample_buckets() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&series, 10);
        assert_eq!(d.len(), 10);
        assert!(d.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }
}

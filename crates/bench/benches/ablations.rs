//! Ablation benches for the design choices called out in DESIGN.md §6:
//!
//! * `conflict_policy` — first-wins vs priority-wins arbitration under
//!   contention (priority-wins salvages the higher-priority task at
//!   the cost of dooming work already done).
//! * `small_m_split` — Algorithm 1 with and without the separate
//!   small-`m` tuning: rounds to convergence on a noisy plant.
//! * `window_length` — the averaging window `T` of Algorithm 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optpar_apps::ccmirror::CcMirror;
use optpar_core::control::{HybridController, HybridParams, SmallMParams};
use optpar_core::sim::{run_loop, StaticGraphPlant};
use optpar_graph::gen;
use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, LockSpace, WorkSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_conflict_policy(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let g = gen::random_with_avg_degree(4000, 16.0, &mut rng);
    let mut b = LockSpace::builder();
    let layout = CcMirror::layout(&g, &mut b);
    let space = b.build();
    let op = layout.finish(&space);

    let mut group = c.benchmark_group("ablation_conflict_policy_round_m512_w4");
    for (name, policy) in [
        ("first_wins", ConflictPolicy::FirstWins),
        ("priority_wins", ConflictPolicy::PriorityWins),
    ] {
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 4,
                policy,
                ..ExecutorConfig::default()
            },
        );
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(12);
            b.iter(|| {
                let mut ws = WorkSet::from_vec((0..4000u32).collect::<Vec<_>>());
                ex.run_round(&mut ws, 512, &mut rng)
            })
        });
    }
    group.finish();
}

fn rounds_to_drain(params: HybridParams, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::random_with_avg_degree(2000, 16.0, &mut rng);
    let mut ctl = HybridController::new(params);
    let mut plant = StaticGraphPlant::new(g);
    let tr = run_loop(&mut plant, &mut ctl, 200, &mut rng);
    // Proxy metric: total committed over the fixed horizon (higher is
    // better; convergence speed dominates it from a cold start).
    tr.total_committed()
}

fn bench_controller_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hybrid_200round_run");
    group.bench_function("small_m_split_on", |b| {
        let mut s = 0;
        b.iter(|| {
            s += 1;
            rounds_to_drain(
                HybridParams {
                    rho: 0.2,
                    small_m: Some(SmallMParams::default()),
                    ..HybridParams::default()
                },
                s,
            )
        })
    });
    group.bench_function("small_m_split_off", |b| {
        let mut s = 0;
        b.iter(|| {
            s += 1;
            rounds_to_drain(
                HybridParams {
                    rho: 0.2,
                    small_m: None,
                    ..HybridParams::default()
                },
                s,
            )
        })
    });
    for &t in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("window", t), &t, |b, &t| {
            let mut s = 0;
            b.iter(|| {
                s += 1;
                rounds_to_drain(
                    HybridParams {
                        rho: 0.2,
                        window: t,
                        small_m: None,
                        ..HybridParams::default()
                    },
                    s,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conflict_policy, bench_controller_ablations);
criterion_main!(benches);

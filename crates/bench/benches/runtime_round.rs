//! Benchmarks of the speculative runtime itself: one execution round
//! of the CC-mirror operator at several allocations and worker counts
//! (throughput and speculation overhead of the substrate, independent
//! of any particular application).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optpar_apps::ccmirror::CcMirror;
use optpar_graph::gen;
use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, LockSpace, WorkSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(n: usize, d: f64, seed: u64) -> (LockSpace, CcMirror) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::random_with_avg_degree(n, d, &mut rng);
    let mut b = LockSpace::builder();
    let layout = CcMirror::layout(&g, &mut b);
    let space = b.build();
    let mirror = layout.finish(&space);
    (space, mirror)
}

fn bench_round(c: &mut Criterion) {
    let (space, op) = build(10_000, 8.0, 7);
    let mut group = c.benchmark_group("runtime_round_ccmirror_n10k");
    for &workers in &[1usize, 2, 4, 8] {
        for &m in &[64usize, 512] {
            let ex = Executor::new(
                &op,
                &space,
                ExecutorConfig {
                    workers,
                    policy: ConflictPolicy::FirstWins,
                    ..ExecutorConfig::default()
                },
            );
            group.bench_with_input(BenchmarkId::new(format!("w{workers}"), m), &m, |b, &m| {
                let mut rng = StdRng::seed_from_u64(9);
                b.iter(|| {
                    let mut ws = WorkSet::from_vec((0..10_000u32).collect::<Vec<_>>());
                    ex.run_round(&mut ws, m, &mut rng)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);

//! Criterion bench for the FIG2 pipeline: the cost of estimating one
//! point of the conflict-ratio curve, at several allocations, for the
//! random and clique-union families, plus the closed-form bound for
//! scale (the analytic curve is ~free; the Monte-Carlo ones are what
//! the figure regeneration pays for).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optpar_core::{estimate, theory};
use optpar_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let (n, d) = (2000, 16);
    let random = gen::random_with_avg_degree(n, d as f64, &mut rng);
    let union = gen::cliques_plus_isolated(30, 33, n - 990);

    let mut group = c.benchmark_group("fig2_conflict_ratio_point");
    for &m in &[50usize, 400, 1600] {
        group.bench_with_input(BenchmarkId::new("random_mc100", m), &m, |b, &m| {
            b.iter(|| estimate::conflict_ratio_mc(&random, m, 100, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("union_mc100", m), &m, |b, &m| {
            b.iter(|| estimate::conflict_ratio_mc(&union, m, 100, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("bound_exact", m), &m, |b, &m| {
            b.iter(|| black_box(theory::rbar_worst_exact(n, d, m)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);

//! Micro-benchmarks of the core building blocks: greedy MIS, the
//! permutation-prefix commit rule, the round scheduler, controller
//! steps, and the closed-form theory evaluations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optpar_core::control::{Controller, HybridController, HybridParams};
use optpar_core::model::RoundScheduler;
use optpar_core::theory;
use optpar_graph::{gen, mis, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mis(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("mis");
    for &n in &[1000usize, 10_000] {
        let g = gen::random_with_avg_degree(n, 8.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("greedy_random", n), &n, |b, _| {
            b.iter(|| mis::greedy_random_mis(&g, &mut rng))
        });
        let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
        perm.shuffle(&mut rng);
        let m = n / 10;
        group.bench_with_input(BenchmarkId::new("prefix_commit_10pct", n), &n, |b, _| {
            b.iter(|| mis::greedy_prefix_mis(&g, black_box(&perm[..m])))
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let g = gen::random_with_avg_degree(10_000, 8.0, &mut rng);
    c.bench_function("round_scheduler_run_round_m256", |b| {
        b.iter_batched(
            || RoundScheduler::from_csr(&g),
            |mut s| s.run_round(256, &mut StdRng::seed_from_u64(3)),
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_controller_step(c: &mut Criterion) {
    c.bench_function("hybrid_controller_observe", |b| {
        let mut ctl = HybridController::new(HybridParams::default());
        let mut r = 0.1;
        b.iter(|| {
            r = (r * 1.1) % 0.9;
            ctl.observe(black_box(r), 100);
            ctl.current_m()
        })
    });
}

fn bench_theory(c: &mut Criterion) {
    let mut group = c.benchmark_group("theory");
    group.bench_function("em_worst_exact_m1000", |b| {
        b.iter(|| black_box(theory::em_worst_exact(2040, 16, 1000)))
    });
    let mut rng = StdRng::seed_from_u64(4);
    let g = gen::random_with_avg_degree(2000, 16.0, &mut rng);
    group.bench_function("b_m_exact_m1000", |b| {
        b.iter(|| black_box(theory::b_m_exact(&g, 1000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mis,
    bench_scheduler,
    bench_controller_step,
    bench_theory
);
criterion_main!(benches);

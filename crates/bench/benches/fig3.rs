//! Criterion bench for the FIG3 pipeline: one full controller
//! convergence run (120 rounds) on an n = 2000 random graph, for the
//! hybrid Algorithm 1, Recurrence A, and the bisection baseline — the
//! cost of regenerating one Fig. 3 trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use optpar_core::control::{
    BisectionController, HybridController, HybridParams, RecurrenceA, RecurrenceParams,
};
use optpar_core::sim::{run_loop, StaticGraphPlant};
use optpar_graph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig3(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let g = gen::random_with_avg_degree(2000, 16.0, &mut rng);

    let mut group = c.benchmark_group("fig3_controller_run_120_rounds");
    group.bench_function("hybrid", |b| {
        b.iter(|| {
            let mut ctl = HybridController::new(HybridParams {
                rho: 0.2,
                ..HybridParams::default()
            });
            let mut plant = StaticGraphPlant::new(g.clone());
            run_loop(&mut plant, &mut ctl, 120, &mut rng)
        })
    });
    group.bench_function("recurrence_a", |b| {
        b.iter(|| {
            let mut ctl = RecurrenceA::new(RecurrenceParams {
                rho: 0.2,
                ..RecurrenceParams::default()
            });
            let mut plant = StaticGraphPlant::new(g.clone());
            run_loop(&mut plant, &mut ctl, 120, &mut rng)
        })
    });
    group.bench_function("bisection", |b| {
        b.iter(|| {
            let mut ctl = BisectionController::new(RecurrenceParams {
                rho: 0.2,
                ..RecurrenceParams::default()
            });
            let mut plant = StaticGraphPlant::new(g.clone());
            run_loop(&mut plant, &mut ctl, 120, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);

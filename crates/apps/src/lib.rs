#![warn(missing_docs)]

//! # optpar-apps — irregular applications on the speculative runtime
//!
//! The workloads the paper's introduction motivates, each with a
//! sequential reference implementation (the correctness oracle), a
//! speculative [`Operator`](optpar_runtime::Operator), and validation
//! of the algorithm-specific invariants:
//!
//! * [`delaunay`] — Delaunay mesh refinement (the paper's flagship),
//!   on a from-scratch Bowyer–Watson [`triangulation`] substrate with
//!   its own [`geometry`] predicates.
//! * [`boruvka`] — Boruvka's minimum-spanning-tree algorithm by
//!   speculative component contraction (validated against Kruskal).
//! * [`clustering`] — agglomerative clustering by mutual-nearest-
//!   neighbour merging over a k-NN candidate graph.
//! * [`misapp`] — maximal independent set.
//! * [`coloring`] — greedy graph colouring.
//! * [`matching`] — maximal matching (tasks on the line graph).
//! * [`sssp`] — single-source shortest paths by chaotic relaxation
//!   (validated against Dijkstra).
//! * [`preflow`] — Goldberg–Tarjan preflow-push maximum flow
//!   (validated against Edmonds–Karp).
//! * [`survey`] — survey propagation for random 3-SAT (validated
//!   against a sequential Gauss–Seidel fixed point).
//! * [`ccmirror`] — the differential-testing bridge: an operator whose
//!   conflicts mirror an explicit CC graph exactly, so runtime rounds
//!   can be checked against the abstract model in `optpar-core`.

pub mod boruvka;
pub mod ccmirror;
pub mod clustering;
pub mod coloring;
pub mod delaunay;
pub mod geometry;
pub mod matching;
pub mod misapp;
pub mod preflow;
pub mod sssp;
pub mod survey;
pub mod triangulation;

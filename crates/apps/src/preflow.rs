//! Preflow-push (Goldberg–Tarjan) maximum flow — another Galois-suite
//! irregular workload.
//!
//! One task per *active* node (positive excess): push flow along
//! admissible residual edges, relabel when stuck. A task's conflict
//! neighbourhood is the node, its neighbours, and the incident edge
//! flows — small, local, and constantly moving across the graph as
//! excess sloshes toward the sink: the archetype of amorphous
//! data-parallelism with unpredictable task footprints.
//!
//! The network is an undirected graph with per-edge capacity `c`
//! usable in both directions (flow is signed on the canonical `u < v`
//! orientation). Validated against a sequential Edmonds–Karp
//! reference, plus flow-conservation and capacity checks.

use optpar_graph::{ConflictGraph, CsrGraph, NodeId};
use optpar_runtime::{Abort, LockSpace, Operator, SpecStore, TaskCtx};
use rand::Rng;
use std::collections::{HashMap, VecDeque};

/// A capacitated undirected network.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// The underlying simple graph.
    pub graph: CsrGraph,
    /// Capacity per canonical edge (edge-list order), valid in both
    /// directions.
    pub capacities: Vec<u32>,
    /// Source node.
    pub source: NodeId,
    /// Sink node.
    pub sink: NodeId,
}

impl FlowNetwork {
    /// Random capacities in `1..=max_c`.
    pub fn random<R: Rng + ?Sized>(
        graph: CsrGraph,
        source: NodeId,
        sink: NodeId,
        max_c: u32,
        rng: &mut R,
    ) -> Self {
        assert_ne!(source, sink);
        let m = graph.edge_count();
        FlowNetwork {
            capacities: (0..m).map(|_| rng.random_range(1..=max_c)).collect(),
            graph,
            source,
            sink,
        }
    }

    /// Sequential Edmonds–Karp reference: the max-flow value.
    pub fn edmonds_karp(&self) -> u64 {
        let n = self.graph.node_count();
        // Residual capacities as a hash map over directed pairs.
        let mut res: HashMap<(u32, u32), u64> = HashMap::new();
        for ((u, v), &c) in self.graph.edge_list().into_iter().zip(&self.capacities) {
            *res.entry((u, v)).or_insert(0) += c as u64;
            *res.entry((v, u)).or_insert(0) += c as u64;
        }
        let mut total = 0u64;
        loop {
            // BFS for an augmenting path.
            let mut parent: Vec<Option<u32>> = vec![None; n];
            parent[self.source as usize] = Some(self.source);
            let mut q = VecDeque::from([self.source]);
            'bfs: while let Some(u) = q.pop_front() {
                for &v in self.graph.neighbors_slice(u) {
                    if parent[v as usize].is_none() && res.get(&(u, v)).copied().unwrap_or(0) > 0 {
                        parent[v as usize] = Some(u);
                        if v == self.sink {
                            break 'bfs;
                        }
                        q.push_back(v);
                    }
                }
            }
            if parent[self.sink as usize].is_none() {
                return total;
            }
            // Bottleneck.
            let mut bottleneck = u64::MAX;
            let mut v = self.sink;
            while v != self.source {
                let u = parent[v as usize].unwrap();
                bottleneck = bottleneck.min(res[&(u, v)]);
                v = u;
            }
            // Augment.
            let mut v = self.sink;
            while v != self.source {
                let u = parent[v as usize].unwrap();
                *res.get_mut(&(u, v)).unwrap() -= bottleneck;
                *res.get_mut(&(v, u)).unwrap() += bottleneck;
                v = u;
            }
            total += bottleneck;
        }
    }
}

/// Per-node preflow state.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeState {
    /// Current excess (inflow − outflow); ≥ 0 except at the source.
    pub excess: i64,
    /// Height (distance label).
    pub height: u32,
}

/// The speculative preflow-push operator.
pub struct PreflowOp {
    /// The input network.
    pub net: FlowNetwork,
    /// Per-node excess and height.
    pub nodes: SpecStore<NodeState>,
    /// Signed flow on each canonical edge (positive = `u → v` for
    /// `u < v`).
    pub flow: SpecStore<i64>,
    /// For each node, the edge-store index of each incident edge,
    /// aligned with its neighbour slice.
    incident: Vec<Vec<u32>>,
    /// Capacity lookup aligned like `incident`.
    caps: Vec<Vec<u32>>,
}

impl PreflowOp {
    /// Build stores and locks, saturate the source's edges, and return
    /// the initially active nodes.
    pub fn new(net: FlowNetwork) -> (LockSpace, PreflowOp, Vec<NodeId>) {
        let n = net.graph.node_count();
        let m = net.graph.edge_count();
        let mut b = LockSpace::builder();
        let r_nodes = b.region(n);
        let r_flow = b.region(m);
        let space = b.build();

        let mut edge_id: HashMap<(u32, u32), u32> = HashMap::new();
        for (i, (u, v)) in net.graph.edge_list().into_iter().enumerate() {
            edge_id.insert((u, v), i as u32);
        }
        let mut incident = vec![Vec::new(); n];
        let mut caps = vec![Vec::new(); n];
        for u in 0..n as NodeId {
            for &v in net.graph.neighbors_slice(u) {
                let key = if u < v { (u, v) } else { (v, u) };
                let e = edge_id[&key];
                incident[u as usize].push(e);
                caps[u as usize].push(net.capacities[e as usize]);
            }
        }

        // Initial preflow: source at height n, saturate its edges.
        let mut node_init = vec![NodeState::default(); n];
        node_init[net.source as usize].height = n as u32;
        let mut flow_init = vec![0i64; m];
        let mut active = Vec::new();
        let s = net.source;
        for (k, &v) in net.graph.neighbors_slice(s).iter().enumerate() {
            let e = incident[s as usize][k] as usize;
            let c = caps[s as usize][k] as i64;
            flow_init[e] = if s < v { c } else { -c };
            node_init[v as usize].excess += c;
            node_init[s as usize].excess -= c;
            if v != net.sink {
                active.push(v);
            }
        }

        let nodes = SpecStore::new(r_nodes, node_init, n);
        let flow = SpecStore::new(r_flow, flow_init, m);
        (
            space,
            PreflowOp {
                net,
                nodes,
                flow,
                incident,
                caps,
            },
            active,
        )
    }

    /// The computed max-flow value (quiesced): the sink's excess.
    pub fn flow_value(&mut self) -> u64 {
        let sink = self.net.sink as usize;
        self.nodes.get_mut(sink).excess as u64
    }

    /// Validate capacity constraints and conservation (quiesced):
    /// `|flow_e| ≤ cap_e` and, at quiescence, every non-terminal node
    /// has zero excess while source-out equals sink-in.
    pub fn validate(&mut self) -> Result<(), String> {
        let m = self.net.graph.edge_count();
        let caps = self.net.capacities.clone();
        for (e, &cap) in caps.iter().enumerate().take(m) {
            let f = *self.flow.get_mut(e);
            if f.unsigned_abs() > cap as u64 {
                return Err(format!("edge {e} over capacity: {f} > {cap}"));
            }
        }
        let n = self.net.graph.node_count();
        let (s, t) = (self.net.source, self.net.sink);
        let mut excesses = Vec::with_capacity(n);
        for v in 0..n {
            excesses.push(self.nodes.get_mut(v).excess);
        }
        for (v, &e) in excesses.iter().enumerate() {
            let v = v as NodeId;
            if v != s && v != t && e != 0 {
                return Err(format!("node {v} retains excess {e}"));
            }
        }
        if excesses[s as usize] + excesses[t as usize] != 0 {
            return Err("source deficit does not match sink excess".into());
        }
        Ok(())
    }
}

impl Operator for PreflowOp {
    type Task = NodeId;

    fn execute(&self, &u: &NodeId, cx: &mut TaskCtx<'_>) -> Result<Vec<NodeId>, Abort> {
        let ui = u as usize;
        let (s, t) = (self.net.source, self.net.sink);
        if u == s || u == t {
            return Ok(vec![]);
        }
        cx.lock(&self.nodes, ui)?;
        let me = *cx.read(&self.nodes, ui)?;
        if me.excess <= 0 {
            return Ok(vec![]); // stale task
        }
        // Lock the whole neighbourhood up front (cautious), gathering a
        // residual snapshot.
        let nbrs = self.net.graph.neighbors_slice(u);
        let mut spawn = Vec::new();
        let mut excess = me.excess;
        let mut lowest: Option<u32> = None;
        for (k, &v) in nbrs.iter().enumerate() {
            if excess == 0 {
                break;
            }
            let e = self.incident[ui][k] as usize;
            let cap = self.caps[ui][k] as i64;
            cx.lock(&self.nodes, v as usize)?;
            cx.lock(&self.flow, e)?;
            let f = *cx.read(&self.flow, e)?;
            // Signed flow out of u along this edge.
            let out = if u < v { f } else { -f };
            let residual = cap - out;
            if residual <= 0 {
                continue;
            }
            let hv = cx.read(&self.nodes, v as usize)?.height;
            if me.height == hv + 1 {
                // Admissible: push.
                let delta = excess.min(residual);
                *cx.write(&self.flow, e)? += if u < v { delta } else { -delta };
                excess -= delta;
                let vn = cx.write(&self.nodes, v as usize)?;
                vn.excess += delta;
                if v != s && v != t && vn.excess > 0 {
                    spawn.push(v);
                }
            } else {
                lowest = Some(lowest.map_or(hv, |l| l.min(hv)));
            }
        }
        {
            let un = cx.write(&self.nodes, ui)?;
            un.excess = excess;
            if excess > 0 {
                match lowest {
                    Some(l) => {
                        // Relabel: one above the lowest residual
                        // neighbour (standard push-relabel step).
                        un.height = l + 1;
                        spawn.push(u);
                    }
                    None => {
                        // No residual edge at all can only happen if
                        // every incident edge is saturated outward,
                        // which contradicts positive excess; but pushes
                        // above may have consumed all residuals this
                        // round — retry later.
                        spawn.push(u);
                    }
                }
            }
        }
        Ok(spawn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_core::control::HybridController;
    use optpar_graph::gen;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_preflow(net: &FlowNetwork, workers: usize, m: usize, seed: u64) -> u64 {
        let (space, op, active) = PreflowOp::new(net.clone());
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = WorkSet::from_vec(active);
        let mut rounds = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            rounds += 1;
            assert!(rounds < 5_000_000, "preflow did not quiesce");
        }
        let mut op = op;
        op.validate().unwrap();
        op.flow_value()
    }

    #[test]
    fn edmonds_karp_on_known_network() {
        // Diamond: s=0, t=3; edges (0,1):3, (0,2):2, (1,3):2, (2,3):3,
        // (1,2):10. Max flow = 5 (3 via 1 with 1 rerouted to 2, 2 via 2).
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        // edge_list: (0,1), (0,2), (1,2), (1,3), (2,3)
        let net = FlowNetwork {
            graph: g,
            capacities: vec![3, 2, 10, 2, 3],
            source: 0,
            sink: 3,
        };
        assert_eq!(net.edmonds_karp(), 5);
    }

    #[test]
    fn single_edge_network() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let net = FlowNetwork {
            graph: g,
            capacities: vec![7],
            source: 0,
            sink: 1,
        };
        assert_eq!(net.edmonds_karp(), 7);
        assert_eq!(run_preflow(&net, 1, 2, 1), 7);
    }

    #[test]
    fn diamond_network_speculative() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let net = FlowNetwork {
            graph: g,
            capacities: vec![3, 2, 10, 2, 3],
            source: 0,
            sink: 3,
        };
        assert_eq!(run_preflow(&net, 2, 4, 2), 5);
    }

    #[test]
    fn disconnected_sink_zero_flow() {
        let g = gen::cliques_plus_isolated(1, 3, 1);
        let net = FlowNetwork {
            graph: g,
            capacities: vec![1, 1, 1],
            source: 0,
            sink: 3, // isolated
        };
        assert_eq!(net.edmonds_karp(), 0);
        assert_eq!(run_preflow(&net, 2, 4, 3), 0);
    }

    #[test]
    fn random_networks_match_reference_sequential_worker() {
        let mut rng = StdRng::seed_from_u64(4);
        for trial in 0..4 {
            let g = gen::random_with_avg_degree(40, 4.0, &mut rng);
            let net = FlowNetwork::random(g, 0, 39, 20, &mut rng);
            let reference = net.edmonds_karp();
            assert_eq!(
                run_preflow(&net, 1, 8, 10 + trial),
                reference,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn random_networks_match_reference_parallel() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..3 {
            let g = gen::random_with_avg_degree(60, 5.0, &mut rng);
            let net = FlowNetwork::random(g, 1, 58, 15, &mut rng);
            let reference = net.edmonds_karp();
            assert_eq!(
                run_preflow(&net, 6, 16, 20 + trial),
                reference,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn grid_network_with_controller() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = gen::grid(8, 8);
        let net = FlowNetwork::random(g, 0, 63, 12, &mut rng);
        let reference = net.edmonds_karp();
        let (space, op, active) = PreflowOp::new(net);
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec(active);
        let mut ctl = HybridController::with_rho(0.25);
        let _ = ex.run_with_controller(&mut ws, &mut ctl, 5_000_000, &mut rng);
        assert!(ws.is_empty());
        let mut op = op;
        op.validate().unwrap();
        assert_eq!(op.flow_value(), reference);
    }
}

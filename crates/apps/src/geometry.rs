//! 2D computational-geometry primitives for mesh refinement.
//!
//! Predicates use straightforward `f64` determinant evaluation with a
//! relative-epsilon guard rather than full adaptive-precision
//! arithmetic (Shewchuk); inputs in this workspace are random or
//! structured point sets where near-degeneracies are vanishingly rare,
//! and every consumer treats the guard band conservatively. This
//! substitution is recorded in DESIGN.md.

/// A point in the plane.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Construct from coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared distance (no sqrt).
    pub fn dist2(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Sign classification of a predicate value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise (positive area).
    Ccw,
    /// Clockwise (negative area).
    Cw,
    /// Collinear within the epsilon guard.
    Collinear,
}

/// Twice the signed area of triangle `abc` (positive = CCW).
pub fn signed_area2(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Orientation of the ordered triple `abc`.
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    let det = signed_area2(a, b, c);
    // Relative guard: scale epsilon by the magnitude of the products.
    let mag = (b.x - a.x).abs() * (c.y - a.y).abs() + (b.y - a.y).abs() * (c.x - a.x).abs();
    let eps = 1e-12 * mag.max(1e-300);
    if det > eps {
        Orientation::Ccw
    } else if det < -eps {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

/// Is `p` strictly inside the circumcircle of CCW triangle `abc`?
///
/// Standard 3×3 lifted determinant; positive means inside for CCW
/// input.
pub fn in_circle(a: Point, b: Point, c: Point, p: Point) -> bool {
    let ax = a.x - p.x;
    let ay = a.y - p.y;
    let bx = b.x - p.x;
    let by = b.y - p.y;
    let cx = c.x - p.x;
    let cy = c.y - p.y;
    let a2 = ax * ax + ay * ay;
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;
    let det = a2 * (bx * cy - by * cx) - b2 * (ax * cy - ay * cx) + c2 * (ax * by - ay * bx);
    let mag = a2.abs() * (bx * cy).abs().max((by * cx).abs())
        + b2.abs() * (ax * cy).abs().max((ay * cx).abs())
        + c2.abs() * (ax * by).abs().max((ay * bx).abs());
    det > 1e-12 * mag.max(1e-300)
}

/// Circumcenter of triangle `abc`; `None` if (near-)degenerate.
pub fn circumcenter(a: Point, b: Point, c: Point) -> Option<Point> {
    let d = 2.0 * signed_area2(a, b, c);
    if d.abs() < 1e-14 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    Some(Point::new(ux, uy))
}

/// Centroid (always strictly inside a non-degenerate triangle).
pub fn centroid(a: Point, b: Point, c: Point) -> Point {
    Point::new((a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0)
}

/// Triangle area (non-negative).
pub fn area(a: Point, b: Point, c: Point) -> f64 {
    signed_area2(a, b, c).abs() / 2.0
}

/// Smallest interior angle in radians (0 for degenerate input).
pub fn min_angle(a: Point, b: Point, c: Point) -> f64 {
    let la = b.dist(c);
    let lb = a.dist(c);
    let lc = a.dist(b);
    if la <= 0.0 || lb <= 0.0 || lc <= 0.0 {
        return 0.0;
    }
    // Law of cosines per corner; clamp for numeric safety.
    let angle = |opp: f64, s1: f64, s2: f64| {
        (((s1 * s1 + s2 * s2 - opp * opp) / (2.0 * s1 * s2)).clamp(-1.0, 1.0)).acos()
    };
    angle(la, lb, lc)
        .min(angle(lb, la, lc))
        .min(angle(lc, la, lb))
}

/// Is `p` inside (or on the boundary of) CCW triangle `abc`?
pub fn point_in_triangle(a: Point, b: Point, c: Point, p: Point) -> bool {
    let o1 = signed_area2(a, b, p);
    let o2 = signed_area2(b, c, p);
    let o3 = signed_area2(c, a, p);
    o1 >= -1e-12 && o2 >= -1e-12 && o3 >= -1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Point = Point { x: 0.0, y: 0.0 };
    const B: Point = Point { x: 1.0, y: 0.0 };
    const C: Point = Point { x: 0.0, y: 1.0 };

    #[test]
    fn orientation() {
        assert_eq!(orient2d(A, B, C), Orientation::Ccw);
        assert_eq!(orient2d(A, C, B), Orientation::Cw);
        assert_eq!(orient2d(A, B, Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn areas() {
        assert!((area(A, B, C) - 0.5).abs() < 1e-15);
        assert!((signed_area2(A, B, C) - 1.0).abs() < 1e-15);
        assert!((signed_area2(A, C, B) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn incircle_basics() {
        // Circumcircle of the right triangle has center (0.5, 0.5),
        // radius √0.5 ≈ 0.707.
        assert!(in_circle(A, B, C, Point::new(0.5, 0.5)));
        assert!(!in_circle(A, B, C, Point::new(2.0, 2.0)));
        // A point on the circle (the fourth corner of the square) is
        // not *strictly* inside.
        assert!(!in_circle(A, B, C, Point::new(1.0, 1.0)));
    }

    #[test]
    fn circumcenter_right_triangle() {
        let cc = circumcenter(A, B, C).unwrap();
        assert!((cc.x - 0.5).abs() < 1e-12);
        assert!((cc.y - 0.5).abs() < 1e-12);
        // Equidistance.
        assert!((cc.dist(A) - cc.dist(B)).abs() < 1e-12);
        assert!((cc.dist(A) - cc.dist(C)).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_degenerate_is_none() {
        assert!(circumcenter(A, B, Point::new(2.0, 0.0)).is_none());
    }

    #[test]
    fn centroid_is_inside() {
        let g = centroid(A, B, C);
        assert!(point_in_triangle(A, B, C, g));
        assert!((g.x - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn min_angle_values() {
        // Right isoceles: angles 90/45/45.
        assert!((min_angle(A, B, C) - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        // Equilateral: 60 degrees.
        let e = Point::new(0.5, 3f64.sqrt() / 2.0);
        assert!((min_angle(A, B, e) - std::f64::consts::FRAC_PI_3).abs() < 1e-9);
        // Degenerate.
        assert_eq!(min_angle(A, A, B), 0.0);
    }

    #[test]
    fn point_in_triangle_edges() {
        assert!(point_in_triangle(A, B, C, Point::new(0.25, 0.25)));
        assert!(point_in_triangle(A, B, C, Point::new(0.5, 0.0))); // on edge
        assert!(!point_in_triangle(A, B, C, Point::new(0.7, 0.7)));
        assert!(!point_in_triangle(A, B, C, Point::new(-0.1, 0.0)));
    }

    #[test]
    fn distances() {
        assert!((A.dist(B) - 1.0).abs() < 1e-15);
        assert!((B.dist2(C) - 2.0).abs() < 1e-15);
    }
}

//! Maximal matching as a speculative application.
//!
//! One task per edge: if both endpoints are free, match them. The
//! conflict neighbourhood is the two endpoint slots, so the CC graph of
//! tasks is the *line graph* of the input — edges conflict iff they
//! share an endpoint. A minimal, sharply-analyzable workload: the
//! available parallelism is the matching number, and the conflict
//! degree of a task is `deg(u) + deg(v) − 2`.

use optpar_graph::{ConflictGraph, CsrGraph, NodeId};
use optpar_runtime::{Abort, LockSpace, Operator, SpecStore, TaskCtx};

/// Partner value for "unmatched".
pub const FREE: u32 = u32::MAX;

/// The speculative maximal-matching operator.
pub struct MatchingOp {
    /// The input graph.
    pub graph: CsrGraph,
    /// Edge list (task `i` is edge `edges[i]`).
    pub edges: Vec<(NodeId, NodeId)>,
    /// Partner per node (`FREE` when unmatched).
    pub partner: SpecStore<u32>,
}

impl MatchingOp {
    /// Build stores and locks for `graph`.
    pub fn new(graph: CsrGraph) -> (LockSpace, MatchingOp) {
        let n = graph.node_count();
        let mut b = LockSpace::builder();
        let r = b.region(n);
        let space = b.build();
        let partner = SpecStore::filled(r, n, FREE);
        let edges = graph.edge_list();
        (
            space,
            MatchingOp {
                graph,
                edges,
                partner,
            },
        )
    }

    /// One task per edge.
    pub fn initial_tasks(&self) -> Vec<u32> {
        (0..self.edges.len() as u32).collect()
    }

    /// Final partner vector (quiesced).
    pub fn partners(&mut self) -> Vec<u32> {
        self.partner.snapshot()
    }

    /// Validate a *maximal* matching: symmetric partners along real
    /// edges, and no edge with both endpoints free.
    pub fn validate(graph: &CsrGraph, partners: &[u32]) -> Result<(), String> {
        for v in 0..graph.node_count() as NodeId {
            let p = partners[v as usize];
            if p == FREE {
                continue;
            }
            if partners[p as usize] != v {
                return Err(format!("partner of {v} is {p}, but not vice versa"));
            }
            if !graph.has_edge(v, p) {
                return Err(format!("matched pair ({v}, {p}) is not an edge"));
            }
        }
        for (u, v) in graph.edge_list() {
            if partners[u as usize] == FREE && partners[v as usize] == FREE {
                return Err(format!("edge ({u}, {v}) could still be matched"));
            }
        }
        Ok(())
    }

    /// Number of matched pairs in a partner vector.
    pub fn matching_size(partners: &[u32]) -> usize {
        partners.iter().filter(|&&p| p != FREE).count() / 2
    }
}

impl Operator for MatchingOp {
    type Task = u32;

    fn execute(&self, &e: &u32, cx: &mut TaskCtx<'_>) -> Result<Vec<u32>, Abort> {
        let (u, v) = self.edges[e as usize];
        cx.lock(&self.partner, u as usize)?;
        cx.lock(&self.partner, v as usize)?;
        if *cx.read(&self.partner, u as usize)? == FREE
            && *cx.read(&self.partner, v as usize)? == FREE
        {
            *cx.write(&self.partner, u as usize)? = v;
            *cx.write(&self.partner, v as usize)? = u;
        }
        Ok(vec![])
    }
}

/// Sequential reference: greedy maximal matching in edge order.
pub fn sequential_matching(graph: &CsrGraph) -> Vec<u32> {
    let mut partners = vec![FREE; graph.node_count()];
    for (u, v) in graph.edge_list() {
        if partners[u as usize] == FREE && partners[v as usize] == FREE {
            partners[u as usize] = v;
            partners[v as usize] = u;
        }
    }
    partners
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_core::control::HybridController;
    use optpar_graph::gen;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_matching(g: &CsrGraph, workers: usize, m: usize, seed: u64) -> Vec<u32> {
        let (space, op) = MatchingOp::new(g.clone());
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
        }
        let mut op = op;
        op.partners()
    }

    #[test]
    fn sequential_reference_is_maximal() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_with_avg_degree(200, 6.0, &mut rng);
        MatchingOp::validate(&g, &sequential_matching(&g)).unwrap();
    }

    #[test]
    fn speculative_is_maximal_sequential_worker() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_with_avg_degree(150, 5.0, &mut rng);
        MatchingOp::validate(&g, &run_matching(&g, 1, 12, 3)).unwrap();
    }

    #[test]
    fn speculative_is_maximal_parallel() {
        let mut rng = StdRng::seed_from_u64(4);
        for trial in 0..3 {
            let g = gen::random_with_avg_degree(400, 8.0, &mut rng);
            let p = run_matching(&g, 6, 48, 10 + trial);
            MatchingOp::validate(&g, &p).unwrap();
            // Any maximal matching is a 2-approximation of maximum:
            // at least half the greedy size.
            let greedy = MatchingOp::matching_size(&sequential_matching(&g));
            let got = MatchingOp::matching_size(&p);
            assert!(2 * got >= greedy, "matching too small: {got} vs {greedy}");
        }
    }

    #[test]
    fn perfect_on_disjoint_edges() {
        // A perfect matching exists and is forced on a disjoint union
        // of K_2s.
        let g = gen::clique_union(40, 1);
        let p = run_matching(&g, 4, 16, 5);
        MatchingOp::validate(&g, &p).unwrap();
        assert_eq!(MatchingOp::matching_size(&p), 20);
    }

    #[test]
    fn star_matches_exactly_one() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let p = run_matching(&g, 4, 5, 6);
        MatchingOp::validate(&g, &p).unwrap();
        assert_eq!(MatchingOp::matching_size(&p), 1);
    }

    #[test]
    fn empty_graph_trivially_maximal() {
        let g = CsrGraph::edgeless(10);
        let p = run_matching(&g, 2, 4, 7);
        assert!(p.iter().all(|&x| x == FREE));
        MatchingOp::validate(&g, &p).unwrap();
    }

    #[test]
    fn with_adaptive_controller() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::random_with_avg_degree(2000, 8.0, &mut rng);
        let (space, op) = MatchingOp::new(g.clone());
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut ctl = HybridController::with_rho(0.25);
        let _ = ex.run_with_controller(&mut ws, &mut ctl, 1_000_000, &mut rng);
        assert!(ws.is_empty());
        let mut op = op;
        MatchingOp::validate(&g, &op.partners()).unwrap();
    }
}

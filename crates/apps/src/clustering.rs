//! Agglomerative clustering by mutual-nearest-neighbour merging.
//!
//! The paper cites agglomerative clustering (Tan–Steinbach–Kumar) as an
//! amorphous-data-parallel workload. The speculative formulation here:
//! one task per live cluster; a task finds its nearest neighbour among
//! a candidate list (initialized from the k-NN graph of the input
//! points) and merges when the nearest-neighbour relation is *mutual*
//! and the distance is below a threshold. Merging clusters is exactly
//! the cavity-style morphing the paper models: the two clusters die, a
//! combined cluster is born, and neighbouring clusters' tasks are
//! re-spawned because their nearest neighbour may have changed.
//!
//! **Substitution note (DESIGN.md):** production agglomerative
//! clustering uses a kd-tree for exact global nearest neighbours;
//! here candidates are restricted to the k-NN graph of the initial
//! points, which preserves the conflict structure (local, shrinking
//! parallelism) while keeping the substrate small. On well-separated
//! data the result is identical (tests cover this).

use crate::geometry::Point;
use optpar_runtime::{Abort, LockSpace, Operator, SpecStore, TaskCtx};
use rand::Rng;

/// A live or dead cluster.
#[derive(Clone, Debug, Default)]
pub struct Cluster {
    /// Dead clusters were absorbed by a merge.
    pub alive: bool,
    /// Sum of member x coordinates (centroid = sum / count).
    pub sum_x: f64,
    /// Sum of member y coordinates.
    pub sum_y: f64,
    /// Member point indices.
    pub members: Vec<u32>,
    /// Candidate neighbour cluster ids (may be stale; resolved through
    /// the forwarding table).
    pub cands: Vec<u32>,
}

impl Cluster {
    /// The cluster's centroid.
    pub fn centroid(&self) -> Point {
        let n = self.members.len().max(1) as f64;
        Point::new(self.sum_x / n, self.sum_y / n)
    }
}

/// The speculative clustering operator.
pub struct ClusteringOp {
    /// The input points (immutable).
    pub points: Vec<Point>,
    /// Cluster state, one slot per initial point.
    pub clusters: SpecStore<Cluster>,
    /// Union-find-style forwarding: dead cluster → the cluster that
    /// absorbed it.
    pub fwd: SpecStore<u32>,
    /// Merge only pairs closer than this.
    pub threshold: f64,
}

impl ClusteringOp {
    /// Build from points with a `k`-NN candidate graph.
    pub fn new(points: Vec<Point>, k: usize, threshold: f64) -> (LockSpace, ClusteringOp) {
        let n = points.len();
        let mut b = LockSpace::builder();
        let r_clus = b.region(n);
        let r_fwd = b.region(n);
        let space = b.build();

        // Brute-force k-NN (O(n²); inputs are experiment-sized).
        let mut clusters = Vec::with_capacity(n);
        for i in 0..n {
            let mut dists: Vec<(f64, u32)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (points[i].dist2(points[j]), j as u32))
                .collect();
            dists.sort_by(|a, b| a.0.total_cmp(&b.0));
            clusters.push(Cluster {
                alive: true,
                sum_x: points[i].x,
                sum_y: points[i].y,
                members: vec![i as u32],
                cands: dists.iter().take(k).map(|&(_, j)| j).collect(),
            });
        }
        let clusters = SpecStore::new(r_clus, clusters, n);
        let fwd = SpecStore::new(r_fwd, (0..n as u32).collect(), n);
        (
            space,
            ClusteringOp {
                points,
                clusters,
                fwd,
                threshold,
            },
        )
    }

    /// One task per initial cluster.
    pub fn initial_tasks(&self) -> Vec<u32> {
        (0..self.clusters.len() as u32).collect()
    }

    /// Resolve a possibly-stale cluster id to its live representative.
    fn resolve(&self, cx: &mut TaskCtx<'_>, mut id: u32) -> Result<u32, Abort> {
        loop {
            cx.lock(&self.fwd, id as usize)?;
            let next = *cx.read(&self.fwd, id as usize)?;
            if next == id {
                return Ok(id);
            }
            id = next;
        }
    }

    /// Nearest live candidate of cluster `c` (requires `c` locked):
    /// `(candidate, squared distance)`.
    fn nearest(&self, cx: &mut TaskCtx<'_>, c: u32) -> Result<Option<(u32, f64)>, Abort> {
        let my_centroid = cx.read(&self.clusters, c as usize)?.centroid();
        let cands = cx.read(&self.clusters, c as usize)?.cands.clone();
        let mut best: Option<(u32, f64)> = None;
        for cand in cands {
            let live = self.resolve(cx, cand)?;
            if live == c {
                continue; // absorbed into us
            }
            cx.lock(&self.clusters, live as usize)?;
            let cl = cx.read(&self.clusters, live as usize)?;
            debug_assert!(cl.alive, "forwarding must end at a live cluster");
            let d = my_centroid.dist2(cl.centroid());
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((live, d));
            }
        }
        Ok(best)
    }

    /// Final clustering (quiesced): member lists of live clusters.
    pub fn final_clusters(&mut self) -> Vec<Vec<u32>> {
        let n = self.clusters.len();
        (0..n)
            .filter_map(|i| {
                let c = self.clusters.get_mut(i);
                if c.alive {
                    let mut m = c.members.clone();
                    m.sort_unstable();
                    Some(m)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Partition check: every point in exactly one live cluster, and
    /// centroids consistent with members.
    pub fn validate(&mut self) -> Result<(), String> {
        let n = self.clusters.len();
        let points = self.points.clone();
        let mut seen = vec![false; n];
        for i in 0..n {
            let c = self.clusters.get_mut(i);
            if !c.alive {
                continue;
            }
            let mut sx = 0.0;
            let mut sy = 0.0;
            for &m in &c.members {
                if seen[m as usize] {
                    return Err(format!("point {m} in two clusters"));
                }
                seen[m as usize] = true;
                sx += points[m as usize].x;
                sy += points[m as usize].y;
            }
            if (sx - c.sum_x).abs() > 1e-6 || (sy - c.sum_y).abs() > 1e-6 {
                return Err(format!("cluster {i} has inconsistent centroid sums"));
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("a point is in no live cluster".into());
        }
        Ok(())
    }
}

impl Operator for ClusteringOp {
    type Task = u32;

    // FOOTPRINT-UNBOUNDED: forwarding-pointer chase and candidate lists reach clusters determined by prior merges
    fn execute(&self, &c0: &u32, cx: &mut TaskCtx<'_>) -> Result<Vec<u32>, Abort> {
        // The task may reference an absorbed cluster; resolve first.
        let c = self.resolve(cx, c0)?;
        cx.lock(&self.clusters, c as usize)?;
        if !cx.read(&self.clusters, c as usize)?.alive {
            return Ok(vec![]);
        }
        let Some((nn, d)) = self.nearest(cx, c)? else {
            return Ok(vec![]); // isolated cluster: done
        };
        if d.sqrt() > self.threshold {
            return Ok(vec![]); // nothing close enough: done
        }
        // Mutuality: is c the nearest neighbour of nn?
        let Some((nn_of_nn, _)) = self.nearest(cx, nn)? else {
            return Ok(vec![]);
        };
        if nn_of_nn != c {
            // Not mutual; nn's own task will handle the pair when it
            // becomes mutual. No spawn needed: any change to the
            // neighbourhood re-spawns us (see merge below).
            return Ok(vec![]);
        }
        // Merge nn into c.
        let (lm, lsx, lsy, lcands) = {
            let l = cx.write(&self.clusters, nn as usize)?;
            l.alive = false;
            (
                std::mem::take(&mut l.members),
                l.sum_x,
                l.sum_y,
                std::mem::take(&mut l.cands),
            )
        };
        *cx.write(&self.fwd, nn as usize)? = c;
        let mut spawn = Vec::new();
        {
            let wc = cx.write(&self.clusters, c as usize)?;
            wc.members.extend(lm);
            wc.sum_x += lsx;
            wc.sum_y += lsy;
            wc.cands.extend(lcands);
            wc.cands.retain(|&x| x != c && x != nn);
            wc.cands.sort_unstable();
            wc.cands.dedup();
            // Re-examine the merged cluster and everyone whose nearest
            // neighbour may have been c or nn.
            spawn.push(c);
            spawn.extend(wc.cands.iter().copied());
        }
        Ok(spawn)
    }
}

/// Generate `k` Gaussian-ish blobs of `per` points each, centres on a
/// coarse grid with separation `sep`, intra-blob spread `spread`.
pub fn blobs<R: Rng + ?Sized>(
    k: usize,
    per: usize,
    sep: f64,
    spread: f64,
    rng: &mut R,
) -> Vec<Point> {
    let side = (k as f64).sqrt().ceil() as usize;
    let mut pts = Vec::with_capacity(k * per);
    for b in 0..k {
        let cx = (b % side) as f64 * sep;
        let cy = (b / side) as f64 * sep;
        for _ in 0..per {
            // Uniform disc offsets are enough for separation tests.
            let dx = (rng.random::<f64>() - 0.5) * 2.0 * spread;
            let dy = (rng.random::<f64>() - 0.5) * 2.0 * spread;
            pts.push(Point::new(cx + dx, cy + dy));
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_clustering(
        points: Vec<Point>,
        k: usize,
        threshold: f64,
        workers: usize,
        m: usize,
        seed: u64,
    ) -> ClusteringOp {
        let (space, op) = ClusteringOp::new(points, k, threshold);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut rounds = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            rounds += 1;
            assert!(rounds < 1_000_000, "clustering did not terminate");
        }
        op
    }

    #[test]
    fn blobs_generator_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = blobs(4, 10, 100.0, 1.0, &mut rng);
        assert_eq!(pts.len(), 40);
    }

    #[test]
    fn well_separated_blobs_resolve_to_k_clusters() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = blobs(4, 12, 1000.0, 1.0, &mut rng);
        let mut op = run_clustering(pts, 8, 10.0, 4, 12, 3);
        op.validate().unwrap();
        let fin = op.final_clusters();
        assert_eq!(fin.len(), 4, "clusters: {:?}", fin.len());
        for c in &fin {
            assert_eq!(c.len(), 12);
            // Members are contiguous blocks (blob layout).
            let base = c[0] / 12;
            assert!(c.iter().all(|&m| m / 12 == base));
        }
    }

    #[test]
    fn sequential_worker_agrees_on_blob_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = blobs(3, 10, 500.0, 1.0, &mut rng);
        let mut op = run_clustering(pts, 6, 8.0, 1, 6, 5);
        op.validate().unwrap();
        assert_eq!(op.final_clusters().len(), 3);
    }

    #[test]
    fn zero_threshold_merges_nothing() {
        let mut rng = StdRng::seed_from_u64(6);
        let pts = blobs(2, 8, 100.0, 1.0, &mut rng);
        let n = pts.len();
        let mut op = run_clustering(pts, 4, 0.0, 4, 8, 7);
        op.validate().unwrap();
        assert_eq!(op.final_clusters().len(), n);
    }

    #[test]
    fn two_points_merge() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let mut op = run_clustering(pts, 1, 2.0, 2, 2, 8);
        op.validate().unwrap();
        let fin = op.final_clusters();
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0], vec![0, 1]);
    }

    #[test]
    fn centroid_math() {
        let c = Cluster {
            alive: true,
            sum_x: 3.0,
            sum_y: 6.0,
            members: vec![0, 1, 2],
            cands: vec![],
        };
        let g = c.centroid();
        assert!((g.x - 1.0).abs() < 1e-12);
        assert!((g.y - 2.0).abs() < 1e-12);
    }
}

//! Single-source shortest paths by speculative edge relaxation —
//! a LonStar-suite workload (the benchmark suite the paper uses for
//! its parallelism profiles).
//!
//! One task per node whose tentative distance recently improved: relax
//! all outgoing edges; any neighbour whose distance drops is re-spawned
//! (chaotic Bellman–Ford, the unordered formulation of delta-stepping
//! with an infinite delta). A task's conflict neighbourhood is its node
//! plus its neighbours' distance slots, so conflicts mirror the input
//! graph — and the *work profile* starts serial (one source), balloons
//! as the frontier expands, then collapses: the inverse-spike shape
//! that stresses the controller in both directions.
//!
//! Validated against sequential Dijkstra.

use optpar_graph::{ConflictGraph, CsrGraph, NodeId};
use optpar_runtime::{Abort, LockSpace, Operator, ShardMap, SpecStore, TaskCtx};
use rand::Rng;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Distance value for "unreached".
pub const UNREACHED: u64 = u64::MAX;

/// Per-edge weights aligned with `graph.edge_list()` order (symmetric:
/// the same weight applies in both directions).
#[derive(Clone, Debug)]
pub struct SsspInput {
    /// The undirected graph.
    pub graph: CsrGraph,
    /// `weight_of[(u, v)]` for canonical `u < v` edges, stored densely
    /// in edge-list order.
    pub weights: Vec<u64>,
    /// The source node.
    pub source: NodeId,
}

impl SsspInput {
    /// Random positive weights in `1..=max_w`.
    pub fn random<R: Rng + ?Sized>(
        graph: CsrGraph,
        source: NodeId,
        max_w: u64,
        rng: &mut R,
    ) -> Self {
        let m = graph.edge_count();
        let weights = (0..m).map(|_| rng.random_range(1..=max_w)).collect();
        SsspInput {
            graph,
            weights,
            source,
        }
    }

    /// Dense (per-node-sorted) weight lookup table: for each node, the
    /// weights aligned with its neighbour slice.
    fn weight_table(&self) -> Vec<Vec<u64>> {
        use std::collections::HashMap;
        let mut wmap: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        for ((u, v), &w) in self.graph.edge_list().into_iter().zip(&self.weights) {
            wmap.insert((u, v), w);
        }
        (0..self.graph.node_count() as NodeId)
            .map(|u| {
                self.graph
                    .neighbors_slice(u)
                    .iter()
                    .map(|&v| {
                        let key = if u < v { (u, v) } else { (v, u) };
                        wmap[&key]
                    })
                    .collect()
            })
            .collect()
    }

    /// Sequential Dijkstra reference.
    pub fn dijkstra(&self) -> Vec<u64> {
        let wt = self.weight_table();
        let n = self.graph.node_count();
        let mut dist = vec![UNREACHED; n];
        dist[self.source as usize] = 0;
        // Max-heap on Reverse(d).
        let mut heap = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, self.source)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue; // stale entry
            }
            for (i, &v) in self.graph.neighbors_slice(u).iter().enumerate() {
                let nd = d + wt[u as usize][i];
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        dist
    }
}

/// The speculative SSSP operator.
pub struct SsspOp {
    /// The input instance.
    pub input: SsspInput,
    /// Tentative distances.
    pub dist: SpecStore<u64>,
    /// Per-node weight table (immutable).
    weights: Vec<Vec<u64>>,
}

impl SsspOp {
    /// Build stores and locks; the initial work-set is just the source.
    pub fn new(input: SsspInput) -> (LockSpace, SsspOp) {
        let n = input.graph.node_count();
        let mut b = LockSpace::builder();
        let r = b.region(n);
        let space = b.build();
        let mut init = vec![UNREACHED; n];
        init[input.source as usize] = 0;
        let dist = SpecStore::new(r, init, n);
        let weights = input.weight_table();
        (
            space,
            SsspOp {
                input,
                dist,
                weights,
            },
        )
    }

    /// As [`SsspOp::new`], but with the distance store laid out by a
    /// k-way node partition: same-part distance slots (and their lock
    /// words) become contiguous cache-line-aligned slabs, so
    /// partition-affine workers stay inside their own shard. Node ids
    /// stay logical — the operator code is unchanged.
    ///
    /// # Panics
    /// Panics unless `map.len()` equals the node count.
    pub fn new_sharded(input: SsspInput, map: Arc<ShardMap>) -> (LockSpace, SsspOp) {
        let n = input.graph.node_count();
        assert_eq!(map.len(), n, "one part per node");
        let mut b = LockSpace::builder();
        let r = b.region_aligned(map.padded_len());
        let space = b.build();
        let mut init = vec![UNREACHED; n];
        init[input.source as usize] = 0;
        let dist = SpecStore::new_sharded(r, init, UNREACHED, map);
        let weights = input.weight_table();
        (
            space,
            SsspOp {
                input,
                dist,
                weights,
            },
        )
    }

    /// The initial work-set: the source node.
    pub fn initial_tasks(&self) -> Vec<NodeId> {
        vec![self.input.source]
    }

    /// Final distances (quiesced).
    pub fn distances(&mut self) -> Vec<u64> {
        self.dist.snapshot()
    }
}

impl Operator for SsspOp {
    type Task = NodeId;

    fn execute(&self, &u: &NodeId, cx: &mut TaskCtx<'_>) -> Result<Vec<NodeId>, Abort> {
        let ui = u as usize;
        cx.lock(&self.dist, ui)?;
        let du = *cx.read(&self.dist, ui)?;
        if du == UNREACHED {
            return Ok(vec![]); // stale task: our improvement was undone? impossible — just unreached duplicates
        }
        let mut spawn = Vec::new();
        for (i, &v) in self.input.graph.neighbors_slice(u).iter().enumerate() {
            let nd = du + self.weights[ui][i];
            let slot = v as usize;
            cx.lock(&self.dist, slot)?;
            if nd < *cx.read(&self.dist, slot)? {
                *cx.write(&self.dist, slot)? = nd;
                spawn.push(v);
            }
        }
        Ok(spawn)
    }

    /// Seed = the node's own distance slot: the operator's footprint is
    /// the radius-1 ball around it (`FOOTPRINT.toml`), which the
    /// checker cross-validates against every acquired lock.
    fn conflict_seed(&self, &u: &NodeId) -> Option<u64> {
        Some(self.dist.lock_of(u as usize) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_core::control::HybridController;
    use optpar_graph::gen;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_sssp(input: &SsspInput, workers: usize, m: usize, seed: u64) -> Vec<u64> {
        let (space, op) = SsspOp::new(input.clone());
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut rounds = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            rounds += 1;
            assert!(rounds < 1_000_000, "SSSP did not quiesce");
        }
        let mut op = op;
        op.distances()
    }

    #[test]
    fn dijkstra_on_path() {
        // 0 -1- 1 -2- 2 -3- 3
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        // edge_list order: (0,1), (1,2), (2,3)
        let input = SsspInput {
            graph: g,
            weights: vec![1, 2, 3],
            source: 0,
        };
        assert_eq!(input.dijkstra(), vec![0, 1, 3, 6]);
    }

    #[test]
    fn disconnected_stays_unreached() {
        let g = gen::cliques_plus_isolated(1, 3, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let input = SsspInput::random(g, 0, 10, &mut rng);
        let d = input.dijkstra();
        assert_eq!(d[3], UNREACHED);
        assert_eq!(d[4], UNREACHED);
        let spec = run_sssp(&input, 2, 4, 2);
        assert_eq!(spec, d);
    }

    #[test]
    fn speculative_matches_dijkstra_sequential_worker() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_with_avg_degree(200, 5.0, &mut rng);
        let input = SsspInput::random(g, 7, 100, &mut rng);
        assert_eq!(run_sssp(&input, 1, 16, 4), input.dijkstra());
    }

    #[test]
    fn speculative_matches_dijkstra_parallel() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..3 {
            let g = gen::random_with_avg_degree(300, 6.0, &mut rng);
            let input = SsspInput::random(g, trial as u32, 50, &mut rng);
            assert_eq!(
                run_sssp(&input, 8, 32, 100 + trial),
                input.dijkstra(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn unit_weights_equal_bfs_distances() {
        let g = gen::grid(10, 10);
        let m = g.edge_count();
        let input = SsspInput {
            graph: g,
            weights: vec![1; m],
            source: 0,
        };
        let d = run_sssp(&input, 4, 20, 6);
        // Manhattan distance on the grid from corner 0.
        for r in 0..10u64 {
            for c in 0..10u64 {
                assert_eq!(d[(r * 10 + c) as usize], r + c);
            }
        }
    }

    /// The sharded store permutes memory, not meaning: distances from
    /// a sharded run must be byte-identical to Dijkstra's at any
    /// worker count.
    #[test]
    fn sharded_matches_dijkstra() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = gen::grid2d_diag(15, 15);
        let input = SsspInput::random(g.clone(), 3, 40, &mut rng);
        let reference = input.dijkstra();
        let parts = optpar_core::partition::bfs_partition(&g, 4, 1.25).parts;
        let map = Arc::new(ShardMap::from_parts(&parts, 4));
        for workers in [1, 4] {
            let (space, op) = SsspOp::new_sharded(input.clone(), map.clone());
            let ex = Executor::new(
                &op,
                &space,
                ExecutorConfig {
                    workers,
                    policy: ConflictPolicy::FirstWins,
                    ..ExecutorConfig::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(17 + workers as u64);
            let mut ws = WorkSet::from_vec(op.initial_tasks());
            let mut rounds = 0;
            while !ws.is_empty() {
                ex.run_round(&mut ws, 16, &mut rng);
                rounds += 1;
                assert!(rounds < 1_000_000, "sharded SSSP did not quiesce");
            }
            assert!(space.check_all_free().is_ok());
            let mut op = op;
            assert_eq!(op.distances(), reference, "workers={workers}");
        }
    }

    #[test]
    fn with_adaptive_controller() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = gen::random_with_avg_degree(1000, 8.0, &mut rng);
        let input = SsspInput::random(g, 0, 1000, &mut rng);
        let reference = input.dijkstra();
        let (space, op) = SsspOp::new(input);
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut ctl = HybridController::with_rho(0.25);
        let _run = ex.run_with_controller(&mut ws, &mut ctl, 1_000_000, &mut rng);
        assert!(ws.is_empty());
        let mut op = op;
        assert_eq!(op.distances(), reference);
    }
}

//! Maximal independent set as a speculative application.
//!
//! The classic Galois example: one task per node. A task inspects its
//! neighbourhood; if no neighbour is already *in* the set, the node
//! joins and its neighbours are marked *out*. The conflict
//! neighbourhood of a task is the node plus its neighbours, so tasks at
//! graph distance ≤ 2 may conflict — a denser conflict structure than
//! the input graph itself, exactly the kind of amplification optimistic
//! runtimes face in practice.

use optpar_graph::{ConflictGraph, CsrGraph, NodeId};
use optpar_runtime::{Abort, LockSpace, Operator, SpecStore, TaskCtx};

/// Decision state: not yet processed.
pub const UNDECIDED: u8 = 0;
/// Decision state: in the independent set.
pub const IN: u8 = 1;
/// Decision state: excluded (a neighbour is in).
pub const OUT: u8 = 2;

/// The speculative MIS operator.
pub struct MisOp {
    /// The input graph.
    pub graph: CsrGraph,
    /// Per-node decision state.
    pub state: SpecStore<u8>,
}

impl MisOp {
    /// Declare the lock region and build the operator.
    pub fn new(graph: CsrGraph) -> (LockSpace, MisOp) {
        let mut b = LockSpace::builder();
        let r = b.region(graph.node_count());
        let space = b.build();
        let state = SpecStore::filled(r, graph.node_count(), UNDECIDED);
        (space, MisOp { graph, state })
    }

    /// All-nodes initial work-set.
    pub fn initial_tasks(&self) -> Vec<NodeId> {
        (0..self.graph.node_count() as NodeId).collect()
    }

    /// Extract the final decision vector (quiesced).
    pub fn decisions(&mut self) -> Vec<u8> {
        self.state.snapshot()
    }

    /// Validate that `decisions` encodes a maximal independent set of
    /// `graph`.
    pub fn validate(graph: &CsrGraph, decisions: &[u8]) -> Result<(), String> {
        if decisions.contains(&UNDECIDED) {
            return Err("undecided node remains".into());
        }
        let in_set: Vec<NodeId> = decisions
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == IN)
            .map(|(v, _)| v as NodeId)
            .collect();
        if !optpar_graph::mis::is_maximal_independent_set(graph, &in_set) {
            return Err("result is not a maximal independent set".into());
        }
        Ok(())
    }
}

impl Operator for MisOp {
    type Task = NodeId;

    fn execute(&self, &v: &NodeId, cx: &mut TaskCtx<'_>) -> Result<Vec<NodeId>, Abort> {
        let vi = v as usize;
        // Cautious: lock the whole neighbourhood first (self, then
        // neighbours in index order).
        cx.lock(&self.state, vi)?;
        for &w in self.graph.neighbors_slice(v) {
            cx.lock(&self.state, w as usize)?;
        }
        if *cx.read(&self.state, vi)? != UNDECIDED {
            return Ok(vec![]); // decided by an earlier neighbour task
        }
        let mut any_in = false;
        for &w in self.graph.neighbors_slice(v) {
            if *cx.read(&self.state, w as usize)? == IN {
                any_in = true;
                break;
            }
        }
        if any_in {
            *cx.write(&self.state, vi)? = OUT;
        } else {
            *cx.write(&self.state, vi)? = IN;
            for &w in self.graph.neighbors_slice(v) {
                *cx.write(&self.state, w as usize)? = OUT;
            }
        }
        Ok(vec![])
    }
}

/// Sequential reference: greedy MIS in the given node order.
pub fn sequential_mis(graph: &CsrGraph, order: &[NodeId]) -> Vec<u8> {
    let mut state = vec![UNDECIDED; graph.node_count()];
    for &v in order {
        if state[v as usize] != UNDECIDED {
            continue;
        }
        let any_in = graph
            .neighbors_slice(v)
            .iter()
            .any(|&w| state[w as usize] == IN);
        if any_in {
            state[v as usize] = OUT;
        } else {
            state[v as usize] = IN;
            for &w in graph.neighbors_slice(v) {
                state[w as usize] = OUT;
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_core::control::HybridController;
    use optpar_graph::gen;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_mis(g: &CsrGraph, workers: usize, m: usize, seed: u64) -> Vec<u8> {
        let (space, op) = MisOp::new(g.clone());
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut rounds = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            rounds += 1;
            assert!(rounds < 100_000, "MIS did not terminate");
        }
        let mut op = op;
        op.decisions()
    }

    #[test]
    fn sequential_reference_is_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_with_avg_degree(100, 5.0, &mut rng);
        let order: Vec<NodeId> = (0..100).collect();
        let d = sequential_mis(&g, &order);
        MisOp::validate(&g, &d).unwrap();
    }

    #[test]
    fn speculative_single_worker_valid() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_with_avg_degree(120, 6.0, &mut rng);
        let d = run_mis(&g, 1, 16, 3);
        MisOp::validate(&g, &d).unwrap();
    }

    #[test]
    fn speculative_parallel_valid() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..3 {
            let g = gen::random_with_avg_degree(300, 8.0, &mut rng);
            let d = run_mis(&g, 8, 48, 5);
            MisOp::validate(&g, &d).unwrap();
        }
    }

    #[test]
    fn edgeless_graph_all_in() {
        let g = CsrGraph::edgeless(40);
        let d = run_mis(&g, 4, 10, 6);
        assert!(d.iter().all(|&s| s == IN));
    }

    #[test]
    fn complete_graph_one_in() {
        let g = gen::complete(20);
        let d = run_mis(&g, 4, 20, 7);
        assert_eq!(d.iter().filter(|&&s| s == IN).count(), 1);
        MisOp::validate(&g, &d).unwrap();
    }

    #[test]
    fn with_adaptive_controller() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::random_with_avg_degree(500, 10.0, &mut rng);
        let (space, op) = MisOp::new(g.clone());
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut ctl = HybridController::with_rho(0.25);
        let run = ex.run_with_controller(&mut ws, &mut ctl, 100_000, &mut rng);
        assert!(ws.is_empty());
        assert_eq!(run.total_committed(), 500);
        let mut op = op;
        MisOp::validate(&g, &op.decisions()).unwrap();
    }
}

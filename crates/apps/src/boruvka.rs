//! Boruvka's minimum-spanning-forest algorithm by speculative
//! component contraction.
//!
//! One task per live component: find the component's minimum-weight
//! outgoing edge (safe to add by the cut property) and contract it,
//! merging the smaller endpoint-component into the larger. The conflict
//! neighbourhood — the two components plus the representative pointers
//! of the absorbed side — grows as components coarsen, so available
//! parallelism *shrinks* over the run: the mirror image of Delaunay
//! refinement's growth, and a good stressor for the allocation
//! controller.
//!
//! Weights must be distinct for a unique MSF; [`WeightedGraph::random`]
//! guarantees this by construction. Validated against Kruskal.

use optpar_graph::{ConflictGraph, CsrGraph, NodeId};
use optpar_runtime::{Abort, LockSpace, Operator, SpecStore, TaskCtx};
use rand::seq::SliceRandom;
use rand::Rng;

/// An undirected graph with distinct edge weights.
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    /// The underlying simple graph.
    pub graph: CsrGraph,
    /// `weights[i]` belongs to `graph.edge_list()[i]`.
    pub weights: Vec<u64>,
}

impl WeightedGraph {
    /// Attach a random permutation of `0..m` as weights (distinct by
    /// construction).
    pub fn random<R: Rng + ?Sized>(graph: CsrGraph, rng: &mut R) -> Self {
        let m = graph.edge_count();
        let mut weights: Vec<u64> = (0..m as u64).collect();
        weights.shuffle(rng);
        WeightedGraph { graph, weights }
    }

    /// Weighted edge list `(u, v, w)`.
    pub fn weighted_edges(&self) -> Vec<(NodeId, NodeId, u64)> {
        self.graph
            .edge_list()
            .into_iter()
            .zip(&self.weights)
            .map(|((u, v), &w)| (u, v, w))
            .collect()
    }

    /// Kruskal reference: total weight and edge count of the minimum
    /// spanning forest.
    pub fn kruskal(&self) -> (u64, usize) {
        let mut edges = self.weighted_edges();
        edges.sort_unstable_by_key(|&(_, _, w)| w);
        let mut dsu = Dsu::new(self.graph.node_count());
        let mut total = 0u64;
        let mut count = 0usize;
        for (u, v, w) in edges {
            if dsu.union(u as usize, v as usize) {
                total += w;
                count += 1;
            }
        }
        (total, count)
    }
}

/// Plain union-find for the sequential reference.
pub struct Dsu {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Union by rank; returns `true` if the sets were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

/// A live component during contraction.
#[derive(Clone, Debug, Default)]
pub struct Comp {
    /// Dead components were absorbed by a merge.
    pub alive: bool,
    /// Original node ids belonging to this component.
    pub members: Vec<u32>,
    /// Candidate outgoing edges `(u, v, w)`, sorted ascending by
    /// weight; may contain stale intra-component edges, cleaned lazily.
    pub edges: Vec<(u32, u32, u64)>,
    /// MSF edges chosen by merges into this component.
    pub msf: Vec<(u32, u32, u64)>,
    /// Set when the component has no outgoing edges left.
    pub done: bool,
}

/// The speculative Boruvka operator.
pub struct BoruvkaOp {
    /// node → current component representative (a node id).
    pub repr: SpecStore<u32>,
    /// Component payload, indexed by representative node id.
    pub comp: SpecStore<Comp>,
}

impl BoruvkaOp {
    /// Build stores and locks for `wg` (one component per node).
    pub fn new(wg: &WeightedGraph) -> (LockSpace, BoruvkaOp) {
        let n = wg.graph.node_count();
        let mut b = LockSpace::builder();
        let r_repr = b.region(n);
        let r_comp = b.region(n);
        let space = b.build();

        let mut comps: Vec<Comp> = (0..n)
            .map(|v| Comp {
                alive: true,
                members: vec![v as u32],
                edges: Vec::new(),
                msf: Vec::new(),
                done: false,
            })
            .collect();
        for (u, v, w) in wg.weighted_edges() {
            comps[u as usize].edges.push((u, v, w));
            comps[v as usize].edges.push((v, u, w));
        }
        for c in &mut comps {
            c.edges.sort_unstable_by_key(|&(_, _, w)| w);
        }
        let repr = SpecStore::new(r_repr, (0..n as u32).collect(), n);
        let comp = SpecStore::new(r_comp, comps, n);
        (space, BoruvkaOp { repr, comp })
    }

    /// One task per initial component (= node).
    pub fn initial_tasks(&self) -> Vec<u32> {
        (0..self.comp.len() as u32).collect()
    }

    /// Collect the final MSF: total weight and edge count (quiesced).
    pub fn msf(&mut self) -> (u64, usize) {
        let mut total = 0u64;
        let mut count = 0usize;
        let n = self.comp.len();
        for i in 0..n {
            let c = self.comp.get_mut(i);
            if c.alive {
                for &(_, _, w) in &c.msf {
                    total += w;
                    count += 1;
                }
            }
        }
        (total, count)
    }
}

impl Operator for BoruvkaOp {
    type Task = u32;

    // FOOTPRINT-UNBOUNDED: component merge locks every member of the loser component, whose size is runtime state
    fn execute(&self, &c: &u32, cx: &mut TaskCtx<'_>) -> Result<Vec<u32>, Abort> {
        let ci = c as usize;
        cx.lock(&self.comp, ci)?;
        {
            let me = cx.read(&self.comp, ci)?;
            if !me.alive || me.done {
                return Ok(vec![]); // stale task from an earlier merge
            }
        }
        // Find the minimum-weight genuinely-outgoing edge. Edges are
        // sorted, so scan from the front; repr reads require locks.
        let mut best: Option<(u32, u32, u64, u32)> = None; // (u, v, w, other_rep)
        let mut stale_prefix = 0usize;
        let edges: Vec<(u32, u32, u64)> = cx.read(&self.comp, ci)?.edges.clone();
        for &(u, v, w) in &edges {
            cx.lock(&self.repr, v as usize)?;
            let rv = *cx.read(&self.repr, v as usize)?;
            if rv == c {
                stale_prefix += 1; // intra-component; clean up below
                continue;
            }
            best = Some((u, v, w, rv));
            break;
        }
        let Some((u, v, w, other)) = best else {
            // No outgoing edges: this component is a finished tree.
            let me = cx.write(&self.comp, ci)?;
            me.edges.clear();
            me.done = true;
            return Ok(vec![]);
        };
        let oi = other as usize;
        cx.lock(&self.comp, oi)?;
        debug_assert!(cx.read(&self.comp, oi)?.alive, "repr points to dead comp");

        // Merge smaller into larger (small-to-large keeps total repr
        // rewrites O(n log n)).
        let my_size = cx.read(&self.comp, ci)?.members.len();
        let other_size = cx.read(&self.comp, oi)?.members.len();
        let (win, lose) = if my_size >= other_size {
            (ci, oi)
        } else {
            (oi, ci)
        };
        // Detach the loser.
        let (lose_members, lose_edges, lose_msf) = {
            let l = cx.write(&self.comp, lose)?;
            l.alive = false;
            (
                std::mem::take(&mut l.members),
                std::mem::take(&mut l.edges),
                std::mem::take(&mut l.msf),
            )
        };
        // Re-point the loser's members.
        for &mem in &lose_members {
            cx.lock(&self.repr, mem as usize)?;
            *cx.write(&self.repr, mem as usize)? = win as u32;
        }
        // Absorb into the winner.
        {
            let wr = cx.write(&self.comp, win)?;
            // Drop the known-stale prefix of our own list if we are the
            // winner and it is still accurate (c == win).
            if win == ci && stale_prefix > 0 {
                wr.edges.drain(..stale_prefix.min(wr.edges.len()));
            }
            wr.members.extend(lose_members);
            // Merge sorted edge lists.
            let mut merged = Vec::with_capacity(wr.edges.len() + lose_edges.len());
            let (a, b) = (&wr.edges, &lose_edges);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if a[i].2 <= b[j].2 {
                    merged.push(a[i]);
                    i += 1;
                } else {
                    merged.push(b[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&a[i..]);
            merged.extend_from_slice(&b[j..]);
            wr.edges = merged;
            wr.msf.extend(lose_msf);
            wr.msf.push((u, v, w));
        }
        Ok(vec![win as u32])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_core::control::HybridController;
    use optpar_graph::gen;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_boruvka(wg: &WeightedGraph, workers: usize, m: usize, seed: u64) -> (u64, usize) {
        let (space, op) = BoruvkaOp::new(wg);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut rounds = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            rounds += 1;
            assert!(rounds < 1_000_000, "Boruvka did not terminate");
        }
        let mut op = op;
        op.msf()
    }

    #[test]
    fn dsu_basics() {
        let mut d = Dsu::new(4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert_ne!(d.find(0), d.find(2));
        assert!(d.union(0, 2));
        assert_eq!(d.find(1), d.find(3));
    }

    #[test]
    fn kruskal_on_known_graph() {
        // Triangle with weights 0, 1, 2: MST = {0, 1} → weight 1.
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        // edge_list order: (0,1), (0,2), (1,2)
        let wg = WeightedGraph {
            graph: g,
            weights: vec![0, 1, 2],
        };
        assert_eq!(wg.kruskal(), (1, 2));
    }

    #[test]
    fn matches_kruskal_sequential_worker() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_with_avg_degree(80, 4.0, &mut rng);
        let wg = WeightedGraph::random(g, &mut rng);
        let (kw, kc) = wg.kruskal();
        let (bw, bc) = run_boruvka(&wg, 1, 10, 2);
        assert_eq!((bw, bc), (kw, kc));
    }

    #[test]
    fn matches_kruskal_parallel() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..3 {
            let g = gen::random_with_avg_degree(150, 6.0, &mut rng);
            let wg = WeightedGraph::random(g, &mut rng);
            let (kw, kc) = wg.kruskal();
            let (bw, bc) = run_boruvka(&wg, 8, 24, 100 + trial);
            assert_eq!((bw, bc), (kw, kc), "trial {trial}");
        }
    }

    #[test]
    fn disconnected_forest() {
        // Two triangles, no bridge: MSF has 4 edges.
        let g = gen::cliques_plus_isolated(2, 3, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let wg = WeightedGraph::random(g, &mut rng);
        let (kw, kc) = wg.kruskal();
        assert_eq!(kc, 4);
        let (bw, bc) = run_boruvka(&wg, 4, 8, 5);
        assert_eq!((bw, bc), (kw, kc));
    }

    #[test]
    fn single_edge() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let wg = WeightedGraph {
            graph: g,
            weights: vec![7],
        };
        let (bw, bc) = run_boruvka(&wg, 2, 2, 6);
        assert_eq!((bw, bc), (7, 1));
    }

    #[test]
    fn with_adaptive_controller() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = gen::random_with_avg_degree(300, 5.0, &mut rng);
        let wg = WeightedGraph::random(g, &mut rng);
        let (kw, kc) = wg.kruskal();
        let (space, op) = BoruvkaOp::new(&wg);
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut ctl = HybridController::with_rho(0.25);
        let _run = ex.run_with_controller(&mut ws, &mut ctl, 1_000_000, &mut rng);
        assert!(ws.is_empty());
        let mut op = op;
        assert_eq!(op.msf(), (kw, kc));
    }
}

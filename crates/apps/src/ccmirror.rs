//! The CC-graph mirror operator: differential testing bridge between
//! the runtime and the abstract model.
//!
//! Task `v` abstract-locks its own node slot and the slot of every
//! incident *edge* of a fixed conflict graph. Two tasks collide **iff**
//! their nodes are adjacent (they share exactly the lock of their
//! common edge), so the runtime's conflict structure equals the CC
//! graph edge-for-edge — the premise of the paper's model. Running a
//! round through the real executor and through
//! [`optpar_core::model::RoundScheduler`] must then produce the same
//! conflict statistics (identical sets for one worker, identical
//! distributions for many).

use optpar_graph::{ConflictGraph, CsrGraph, NodeId};
use optpar_runtime::{Abort, LockSpace, Operator, Region, ShardMap, SpecStore, TaskCtx};
use std::sync::Arc;

/// Precomputed lock layout for a conflict graph: one lock per node,
/// one per edge.
pub struct CcMirror {
    /// Node payloads: completion counter per node (exercises writes and
    /// the undo log).
    pub node_data: SpecStore<u64>,
    /// One slot per undirected edge.
    pub edge_data: SpecStore<u8>,
    /// For each node, the indices (into `edge_data`) of incident edges.
    incident: Vec<Vec<u32>>,
}

impl CcMirror {
    /// Build the mirror for `g`, declaring regions in `b`.
    ///
    /// Call before `b.build()`; pass the built space to the executor.
    pub fn layout(g: &CsrGraph, b: &mut optpar_runtime::lock::LockSpaceBuilder) -> CcMirrorLayout {
        let n = g.node_count();
        let m = g.edge_count();
        CcMirrorLayout {
            node_region: b.region(n),
            edge_region: b.region(m),
            graph: g.clone(),
            maps: None,
        }
    }

    /// As [`CcMirror::layout`], but sharded by the k-way node
    /// partition `parts`: node slots are grouped by part, and each
    /// edge slot is grouped with its lower endpoint's part (an edge's
    /// lock is first taken by tasks of that part, so cut edges — not
    /// layout accidents — are what cross shards). Both slabs are
    /// cache-line aligned via [`ShardMap`].
    ///
    /// # Panics
    /// Panics unless `parts` covers every node with ids `< k`.
    pub fn layout_sharded(
        g: &CsrGraph,
        b: &mut optpar_runtime::lock::LockSpaceBuilder,
        parts: &[u32],
        k: usize,
    ) -> CcMirrorLayout {
        assert_eq!(parts.len(), g.node_count(), "one part per node");
        let node_map = Arc::new(ShardMap::from_parts(parts, k));
        let edge_parts: Vec<u32> = g
            .edge_list()
            .iter()
            .map(|&(u, _)| parts[u as usize])
            .collect();
        let edge_map = Arc::new(ShardMap::from_parts(&edge_parts, k));
        CcMirrorLayout {
            node_region: b.region_aligned(node_map.padded_len()),
            edge_region: b.region_aligned(edge_map.padded_len()),
            graph: g.clone(),
            maps: Some((node_map, edge_map)),
        }
    }
}

/// Intermediate layout handle (regions declared, space not yet built).
pub struct CcMirrorLayout {
    node_region: Region,
    edge_region: Region,
    graph: CsrGraph,
    /// Shard layouts for the node and edge stores (sharded builds).
    maps: Option<(Arc<ShardMap>, Arc<ShardMap>)>,
}

impl CcMirrorLayout {
    /// Finish construction once the [`LockSpace`] exists.
    pub fn finish(self, _space: &LockSpace) -> CcMirror {
        let g = &self.graph;
        let n = g.node_count();
        // Assign edge ids in canonical order.
        let mut incident = vec![Vec::new(); n];
        for (eid, (u, v)) in g.edge_list().into_iter().enumerate() {
            incident[u as usize].push(eid as u32);
            incident[v as usize].push(eid as u32);
        }
        let m = g.edge_count();
        let (node_data, edge_data) = match self.maps {
            Some((nmap, emap)) => (
                SpecStore::new_sharded(self.node_region, vec![0; n], 0, nmap),
                SpecStore::new_sharded(self.edge_region, vec![0; m], 0, emap),
            ),
            None => (
                SpecStore::filled(self.node_region, n, 0),
                SpecStore::filled(self.edge_region, m, 0),
            ),
        };
        CcMirror {
            node_data,
            edge_data,
            incident,
        }
    }
}

impl Operator for CcMirror {
    type Task = NodeId;

    fn execute(&self, &v: &NodeId, cx: &mut TaskCtx<'_>) -> Result<Vec<NodeId>, Abort> {
        // Lock own node, then every incident edge (the conflict
        // surface), then do a token write so the undo log is exercised.
        cx.lock(&self.node_data, v as usize)?;
        for &e in &self.incident[v as usize] {
            cx.lock(&self.edge_data, e as usize)?;
        }
        *cx.write(&self.node_data, v as usize)? += 1;
        Ok(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_core::estimate;
    use optpar_graph::gen;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(g: &CsrGraph) -> (LockSpace, CcMirror) {
        let mut b = LockSpace::builder();
        let layout = CcMirror::layout(g, &mut b);
        let space = b.build();
        let mirror = layout.finish(&space);
        (space, mirror)
    }

    #[test]
    fn adjacent_tasks_conflict_nonadjacent_commit() {
        // Path 0-1-2: tasks 0 and 2 can commit together; 0 and 1 cannot.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let (space, op) = build(&g);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 1,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        // Force the batch [0, 1, 2] by sampling all three; with one
        // worker they run in draw order. Over many trials, whenever 1
        // runs before 0 and 2, exactly one of {0, 2} plus ... — instead
        // check the invariant: committed set is independent & maximal.
        for _ in 0..50 {
            let mut ws = WorkSet::from_vec(vec![0u32, 1, 2]);
            let rs = ex.run_round(&mut ws, 3, &mut rng);
            assert_eq!(rs.launched, 3);
            assert!(rs.committed == 2 || rs.committed == 1);
            // 0 and 2 never both abort (they don't conflict with each
            // other; at least one of them beats 1 or 1 commits alone).
            assert!(rs.committed >= 1);
        }
    }

    #[test]
    fn sequential_matches_model_conflict_counts() {
        // With one worker and first-wins, the committed count for a
        // given priority order equals the model's greedy prefix MIS.
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_with_avg_degree(100, 8.0, &mut rng);
        let (space, op) = build(&g);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 1,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        // Runtime estimate of r̄(m).
        let m = 30;
        let trials = 400;
        let mut total_aborts = 0usize;
        for _ in 0..trials {
            let mut ws = WorkSet::from_vec((0..100u32).collect::<Vec<_>>());
            let rs = ex.run_round(&mut ws, m, &mut rng);
            total_aborts += rs.aborted;
        }
        let rt = total_aborts as f64 / (trials * m) as f64;
        // Model estimate.
        let est = estimate::conflict_ratio_mc(&g, m, 4000, &mut rng);
        assert!(
            (rt - est.mean).abs() < 0.04,
            "runtime r {rt} vs model {:?}",
            est
        );
    }

    #[test]
    fn parallel_conflict_ratio_matches_model() {
        // Many workers, first-wins: arbitration order is no longer the
        // draw order, but the *distribution* of conflict counts over
        // uniformly random batches matches the model (both are greedy
        // MIS over a uniformly random order — hardware interleaving
        // instead of the permutation, but the batch is already uniform,
        // and on the induced subgraph every maximal independent set
        // arises; the expected abort count is graph-level, compare
        // within tolerance).
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_with_avg_degree(200, 10.0, &mut rng);
        let (space, op) = build(&g);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers: 4,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let m = 60;
        let trials = 200;
        let mut total_aborts = 0usize;
        for _ in 0..trials {
            let mut ws = WorkSet::from_vec((0..200u32).collect::<Vec<_>>());
            let rs = ex.run_round(&mut ws, m, &mut rng);
            total_aborts += rs.aborted;
        }
        let rt = total_aborts as f64 / (trials * m) as f64;
        let est = estimate::conflict_ratio_mc(&g, m, 4000, &mut rng);
        assert!(
            (rt - est.mean).abs() < 0.06,
            "runtime r {rt} vs model {}",
            est.mean
        );
    }

    /// A sharded layout must be behaviorally identical to the
    /// unsharded one: same committed counters, same conflict
    /// structure, locks all free at the end.
    #[test]
    fn sharded_layout_is_behaviorally_identical() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gen::grid2d_diag(12, 12);
        let parts = optpar_core::partition::bfs_partition(&g, 4, 1.25).parts;
        let mut b = LockSpace::builder();
        let layout = CcMirror::layout_sharded(&g, &mut b, &parts, 4);
        let space = b.build();
        let op = layout.finish(&space);
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let n = g.node_count();
        let mut ws = WorkSet::from_vec((0..n as u32).collect::<Vec<_>>());
        let mut committed = 0;
        while !ws.is_empty() {
            committed += ex.run_round(&mut ws, 24, &mut rng).committed;
        }
        assert_eq!(committed, n);
        assert!(space.check_all_free().is_ok());
        let mut nd = op.node_data;
        assert!(nd.snapshot().iter().all(|&c| c == 1));
    }

    #[test]
    fn all_tasks_eventually_commit_once() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::random_with_avg_degree(80, 6.0, &mut rng);
        let (space, op) = build(&g);
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut ws = WorkSet::from_vec((0..80u32).collect::<Vec<_>>());
        let mut committed = 0;
        while !ws.is_empty() {
            committed += ex.run_round(&mut ws, 20, &mut rng).committed;
        }
        assert_eq!(committed, 80);
        // Every node's counter is exactly 1: commits are exactly-once
        // and aborted attempts were rolled back.
        let mut nd = op.node_data;
        assert!(nd.snapshot().iter().all(|&c| c == 1));
    }
}

//! Delaunay mesh refinement — the paper's flagship irregular workload.
//!
//! Bad triangles (area above a bound) are refined by inserting a new
//! point (the circumcenter, or the centroid as a hull-safe fallback)
//! and retriangulating its Bowyer–Watson *cavity*. Two bad triangles
//! can be processed in parallel exactly when their cavities do not
//! overlap — the paper's §2 example, reproduced here both sequentially
//! (reference) and speculatively on the optpar runtime.
//!
//! **Substitution note (DESIGN.md):** the paper's Galois experiments
//! refine by minimum-angle (Ruppert/Chew) with encroached-segment
//! handling. We use an *area* criterion with a centroid fallback at the
//! hull, which exercises the identical cavity/conflict structure while
//! avoiding the full PSLG machinery; the termination and validity
//! invariants tested are the same (no bad triangle remains, the mesh
//! stays a valid triangulation, total area is preserved).

use crate::geometry::{self, Orientation, Point};
use crate::triangulation::{Mesh, Tri, NO_TRI};
use optpar_runtime::{Abort, AppendArena, LockSpace, Operator, SpecStore, TaskCtx};
use std::collections::HashSet;

/// Refinement parameters.
#[derive(Clone, Copy, Debug)]
pub struct RefineConfig {
    /// A triangle is *bad* while its area exceeds this.
    pub max_area: f64,
    /// Optional quality criterion: also bad while the minimum interior
    /// angle is below this many *degrees* — unless the triangle is
    /// already smaller than `angle_area_floor` (the floor is what
    /// guarantees termination without full Ruppert/Chew encroachment
    /// machinery; see the module-level substitution note).
    pub min_angle_deg: Option<f64>,
    /// Triangles below this area are never angle-refined.
    pub angle_area_floor: f64,
}

impl RefineConfig {
    /// Pure size-based refinement (the default criterion).
    pub fn area_only(max_area: f64) -> Self {
        RefineConfig {
            max_area,
            min_angle_deg: None,
            angle_area_floor: 0.0,
        }
    }

    /// Size plus minimum-angle quality refinement.
    pub fn with_min_angle(max_area: f64, min_angle_deg: f64, angle_area_floor: f64) -> Self {
        assert!(
            (0.0..30.0).contains(&min_angle_deg),
            "angle thresholds ≥ 30° are not guaranteed to terminate"
        );
        assert!(
            angle_area_floor > 0.0,
            "the area floor guarantees termination"
        );
        RefineConfig {
            max_area,
            min_angle_deg: Some(min_angle_deg),
            angle_area_floor,
        }
    }

    /// Does the triangle `abc` violate the quality criterion?
    pub fn is_bad(&self, a: Point, b: Point, c: Point) -> bool {
        let area = geometry::area(a, b, c);
        if area > self.max_area {
            return true;
        }
        if let Some(deg) = self.min_angle_deg {
            if area > self.angle_area_floor && geometry::min_angle(a, b, c) < deg.to_radians() {
                return true;
            }
        }
        false
    }
}

/// Sequential reference refinement. Returns the number of points
/// inserted.
///
/// # Panics
/// Panics if more than `max_inserts` insertions are needed (safety cap
/// against configuration mistakes).
pub fn refine_sequential(mesh: &mut Mesh, cfg: RefineConfig, max_inserts: usize) -> usize {
    let mut inserted = 0;
    loop {
        let bad = mesh.live_tris().into_iter().find(|&t| {
            let [a, b, c] = mesh.corners(t);
            cfg.is_bad(a, b, c)
        });
        let Some(t) = bad else {
            return inserted;
        };
        assert!(
            inserted < max_inserts,
            "refinement exceeded {max_inserts} insertions"
        );
        let [a, b, c] = mesh.corners(t);
        // Prefer the circumcenter; fall back to the centroid when the
        // circumcenter leaves the triangulated region.
        let p = geometry::circumcenter(a, b, c)
            .filter(|&cc| mesh.locate(cc, t).is_some())
            .unwrap_or_else(|| geometry::centroid(a, b, c));
        let seed = mesh
            .locate(p, t)
            .expect("centroid is always inside the mesh");
        let v = mesh.points.len() as u32;
        mesh.points.push(p);
        mesh.insert_into(v, seed);
        inserted += 1;
    }
}

/// Count of bad triangles in a mesh.
pub fn bad_count(mesh: &Mesh, cfg: RefineConfig) -> usize {
    mesh.live_tris()
        .into_iter()
        .filter(|&t| {
            let [a, b, c] = mesh.corners(t);
            cfg.is_bad(a, b, c)
        })
        .count()
}

/// The speculative refinement operator.
pub struct DelaunayOp {
    /// Triangle slots (live prefix grows as cavities are replaced).
    pub tris: SpecStore<Tri>,
    /// Mesh points: written once, read lock-free.
    pub points: AppendArena<Point>,
    /// The refinement criterion.
    pub cfg: RefineConfig,
}

impl DelaunayOp {
    /// Build from an initial mesh with explicit capacities.
    pub fn new(
        mesh: &Mesh,
        cfg: RefineConfig,
        cap_tris: usize,
        cap_points: usize,
    ) -> (LockSpace, DelaunayOp) {
        assert!(cap_tris >= mesh.tris.len() && cap_points >= mesh.points.len());
        let mut b = LockSpace::builder();
        let r = b.region(cap_tris);
        let space = b.build();
        let dead = Tri {
            v: [0; 3],
            nbr: [NO_TRI; 3],
            alive: false,
        };
        let tris = SpecStore::from_vec(r, mesh.tris.clone(), dead);
        let points = AppendArena::seeded(cap_points, mesh.points.clone());
        (space, DelaunayOp { tris, points, cfg })
    }

    /// Build with automatically estimated capacities (generous slack
    /// over the expected final size `total_area / max_area`).
    pub fn with_auto_capacity(mesh: &Mesh, cfg: RefineConfig) -> (LockSpace, DelaunayOp) {
        let expected_final = (mesh.total_area() / cfg.max_area).ceil() as usize;
        let cap_tris = mesh.tris.len() + 40 * expected_final + 1024;
        let cap_points = mesh.points.len() + 10 * expected_final + 256;
        Self::new(mesh, cfg, cap_tris, cap_points)
    }

    /// Initial work-set: indices of bad live triangles.
    pub fn initial_tasks(&mut self) -> Vec<u32> {
        let cfg = self.cfg;
        let points: Vec<Point> = self.points.snapshot();
        let mut out = Vec::new();
        let n = self.tris.len();
        for i in 0..n {
            let t = *self.tris.get_mut(i);
            if t.alive {
                let [a, b, c] = [
                    points[t.v[0] as usize],
                    points[t.v[1] as usize],
                    points[t.v[2] as usize],
                ];
                if cfg.is_bad(a, b, c) {
                    out.push(i as u32);
                }
            }
        }
        out
    }

    /// Reassemble a plain [`Mesh`] (quiesced).
    pub fn into_mesh(mut self) -> Mesh {
        let points = self.points.snapshot();
        let n = self.tris.len();
        let tris = (0..n).map(|i| *self.tris.get_mut(i)).collect();
        Mesh {
            points,
            tris,
            ghost_count: 3,
        }
    }

    fn corner(&self, tri: &Tri, k: usize) -> Point {
        *self.points.get(tri.v[k] as usize)
    }

    fn corners_of(&self, tri: &Tri) -> [Point; 3] {
        [
            self.corner(tri, 0),
            self.corner(tri, 1),
            self.corner(tri, 2),
        ]
    }

    /// BFS the Bowyer–Watson cavity of `p` seeded at live triangle
    /// `seed`, locking every triangle visited.
    fn cavity_spec(&self, cx: &mut TaskCtx<'_>, seed: u32, p: Point) -> Result<Vec<u32>, Abort> {
        let mut cavity = vec![seed];
        let mut seen: HashSet<u32> = HashSet::from([seed]);
        let mut stack = vec![seed];
        while let Some(t) = stack.pop() {
            let tri = *cx.read(&self.tris, t as usize)?;
            for i in 0..3 {
                let n = tri.nbr[i];
                if n == NO_TRI || seen.contains(&n) {
                    continue;
                }
                cx.lock(&self.tris, n as usize)?;
                let ntri = *cx.read(&self.tris, n as usize)?;
                debug_assert!(ntri.alive, "live triangle adjacent to dead one");
                let [a, b, c] = self.corners_of(&ntri);
                if geometry::in_circle(a, b, c, p) {
                    seen.insert(n);
                    cavity.push(n);
                    stack.push(n);
                }
            }
        }
        Ok(cavity)
    }

    /// Collect the directed boundary edges of a cavity, locking outer
    /// neighbours (whose adjacency will be patched).
    fn boundary_of(
        &self,
        cx: &mut TaskCtx<'_>,
        cavity: &[u32],
    ) -> Result<Vec<(u32, u32, u32)>, Abort> {
        let in_cavity: HashSet<u32> = cavity.iter().copied().collect();
        let mut boundary = Vec::new();
        for &t in cavity {
            let tri = *cx.read(&self.tris, t as usize)?;
            for i in 0..3 {
                let n = tri.nbr[i];
                if n != NO_TRI && in_cavity.contains(&n) {
                    continue;
                }
                if n != NO_TRI {
                    cx.lock(&self.tris, n as usize)?;
                }
                boundary.push((tri.v[(i + 1) % 3], tri.v[(i + 2) % 3], n));
            }
        }
        Ok(boundary)
    }

    /// Retriangulate `cavity` around published point `v`; returns the
    /// new triangle indices. All involved triangles are already locked.
    fn retriangulate_spec(
        &self,
        cx: &mut TaskCtx<'_>,
        cavity: &[u32],
        boundary: &[(u32, u32, u32)],
        v: u32,
    ) -> Result<Vec<u32>, Abort> {
        use std::collections::HashMap;
        for &t in cavity {
            cx.write(&self.tris, t as usize)?.alive = false;
        }
        let mut ids = Vec::with_capacity(boundary.len());
        for _ in boundary {
            ids.push(cx.alloc(&self.tris)? as u32);
        }
        let mut by_start: HashMap<u32, u32> = HashMap::new();
        let mut by_end: HashMap<u32, u32> = HashMap::new();
        for (k, &(a, b, _)) in boundary.iter().enumerate() {
            by_start.insert(a, ids[k]);
            by_end.insert(b, ids[k]);
        }
        for (k, &(a, b, outer)) in boundary.iter().enumerate() {
            let t = ids[k];
            let mut tri = Tri::new(a, b, v);
            tri.nbr[2] = outer;
            tri.nbr[0] = *by_start
                .get(&b)
                .expect("cavity boundary must be a closed loop");
            tri.nbr[1] = *by_end
                .get(&a)
                .expect("cavity boundary must be a closed loop");
            *cx.write(&self.tris, t as usize)? = tri;
            if outer != NO_TRI {
                let mut o = *cx.read(&self.tris, outer as usize)?;
                let e = o
                    .edge_index(a, b)
                    .expect("outer neighbour shares the boundary edge");
                o.nbr[e] = t;
                *cx.write(&self.tris, outer as usize)? = o;
            }
        }
        Ok(ids)
    }
}

impl Operator for DelaunayOp {
    type Task = u32;

    // FOOTPRINT-UNBOUNDED: cavity growth locks every triangle whose circumcircle contains the new point
    fn execute(&self, &t: &u32, cx: &mut TaskCtx<'_>) -> Result<Vec<u32>, Abort> {
        cx.lock(&self.tris, t as usize)?;
        let tri = *cx.read(&self.tris, t as usize)?;
        if !tri.alive {
            return Ok(vec![]); // refined away by an earlier cavity
        }
        let [a, b, c] = self.corners_of(&tri);
        if !self.cfg.is_bad(a, b, c) {
            return Ok(vec![]);
        }
        // Attempt 1: circumcenter. Attempt 2: centroid (always valid).
        let candidates = [
            geometry::circumcenter(a, b, c),
            Some(geometry::centroid(a, b, c)),
        ];
        for cand in candidates.into_iter().flatten() {
            let cavity = self.cavity_spec(cx, t, cand)?;
            let boundary = self.boundary_of(cx, &cavity)?;
            // Hull guard: every fan triangle must be CCW; otherwise the
            // point is outside the cavity region (possible only for the
            // circumcenter) and we retry with the centroid.
            let ok = boundary.iter().all(|&(ea, eb, _)| {
                geometry::orient2d(
                    *self.points.get(ea as usize),
                    *self.points.get(eb as usize),
                    cand,
                ) == Orientation::Ccw
            });
            if !ok {
                continue;
            }
            let v = self.points.push(cand) as u32;
            let created = self.retriangulate_spec(cx, &cavity, &boundary, v)?;
            // Spawn tasks for new bad triangles.
            let mut spawn = Vec::new();
            for &nt in &created {
                let ntri = *cx.read(&self.tris, nt as usize)?;
                let [x, y, z] = self.corners_of(&ntri);
                if self.cfg.is_bad(x, y, z) {
                    spawn.push(nt);
                }
            }
            return Ok(spawn);
        }
        unreachable!("centroid retriangulation is always valid");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_core::control::HybridController;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn square_mesh(extra: usize, seed: u64) -> Mesh {
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        pts.extend((0..extra).map(|_| Point::new(rng.random::<f64>(), rng.random::<f64>())));
        Mesh::delaunay(&pts)
    }

    #[test]
    fn sequential_refinement_clears_bad_triangles() {
        let mut m = square_mesh(10, 1);
        let cfg = RefineConfig::area_only(0.01);
        assert!(bad_count(&m, cfg) > 0);
        let inserted = refine_sequential(&mut m, cfg, 100_000);
        assert!(inserted > 0);
        assert_eq!(bad_count(&m, cfg), 0);
        m.check_valid().unwrap();
        m.check_delaunay().unwrap();
        assert!((m.total_area() - 1.0).abs() < 1e-6, "area preserved");
    }

    fn run_speculative(
        mesh: &Mesh,
        cfg: RefineConfig,
        workers: usize,
        m_alloc: usize,
        seed: u64,
    ) -> Mesh {
        let (space, mut op) = DelaunayOp::with_auto_capacity(mesh, cfg);
        let tasks = op.initial_tasks();
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = WorkSet::from_vec(tasks);
        let mut rounds = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m_alloc, &mut rng);
            rounds += 1;
            assert!(rounds < 1_000_000, "refinement did not terminate");
        }
        op.into_mesh()
    }

    #[test]
    fn speculative_single_worker_refines() {
        let m0 = square_mesh(10, 2);
        let cfg = RefineConfig::area_only(0.01);
        let m = run_speculative(&m0, cfg, 1, 8, 3);
        assert_eq!(bad_count(&m, cfg), 0);
        m.check_valid().unwrap();
        m.check_delaunay().unwrap();
        assert!((m.total_area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn speculative_parallel_refines() {
        let m0 = square_mesh(20, 4);
        let cfg = RefineConfig::area_only(0.005);
        let m = run_speculative(&m0, cfg, 8, 32, 5);
        assert_eq!(bad_count(&m, cfg), 0);
        m.check_valid().unwrap();
        m.check_delaunay().unwrap();
        assert!((m.total_area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_and_sequential_agree_on_area_and_quality() {
        let m0 = square_mesh(15, 6);
        let cfg = RefineConfig::area_only(0.02);
        let mut ms = m0.clone();
        refine_sequential(&mut ms, cfg, 100_000);
        let mp = run_speculative(&m0, cfg, 4, 16, 7);
        assert!((ms.total_area() - mp.total_area()).abs() < 1e-6);
        assert_eq!(bad_count(&ms, cfg), 0);
        assert_eq!(bad_count(&mp, cfg), 0);
        // Mesh sizes are close (identical criterion, different orders).
        let (ls, lp) = (ms.live_count(), mp.live_count());
        assert!(
            (ls as f64 - lp as f64).abs() / ls as f64 <= 0.5,
            "sizes diverge: sequential {ls}, parallel {lp}"
        );
    }

    #[test]
    fn min_angle_refinement_improves_quality() {
        let mut m = square_mesh(10, 11);
        let cfg = RefineConfig::with_min_angle(0.01, 20.0, 1e-5);
        let worst_before = m
            .live_tris()
            .iter()
            .map(|&t| {
                let [a, b, c] = m.corners(t);
                geometry::min_angle(a, b, c)
            })
            .fold(f64::INFINITY, f64::min);
        let inserted = refine_sequential(&mut m, cfg, 200_000);
        assert!(inserted > 0);
        assert_eq!(bad_count(&m, cfg), 0);
        m.check_valid().unwrap();
        m.check_delaunay().unwrap();
        assert!((m.total_area() - 1.0).abs() < 1e-6);
        // Every triangle above the floor now has min angle >= 20°.
        for t in m.live_tris() {
            let [a, b, c] = m.corners(t);
            if geometry::area(a, b, c) > cfg.angle_area_floor {
                assert!(
                    geometry::min_angle(a, b, c) >= 20f64.to_radians() - 1e-12,
                    "sliver survived above the floor"
                );
            }
        }
        // And the global worst angle improved (sanity).
        let worst_after = m
            .live_tris()
            .iter()
            .map(|&t| {
                let [a, b, c] = m.corners(t);
                geometry::min_angle(a, b, c)
            })
            .fold(f64::INFINITY, f64::min);
        let _ = worst_before; // floor triangles may stay skinny
        assert!(worst_after > 0.0);
    }

    #[test]
    fn min_angle_speculative_matches_invariants() {
        let m0 = square_mesh(12, 12);
        let cfg = RefineConfig::with_min_angle(0.02, 15.0, 1e-4);
        let m = run_speculative(&m0, cfg, 4, 16, 13);
        assert_eq!(bad_count(&m, cfg), 0);
        m.check_valid().unwrap();
        assert!((m.total_area() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "not guaranteed to terminate")]
    fn min_angle_threshold_capped() {
        let _ = RefineConfig::with_min_angle(0.1, 35.0, 1e-4);
    }

    #[test]
    fn already_fine_mesh_is_untouched() {
        let m0 = square_mesh(10, 8);
        let cfg = RefineConfig::area_only(10.0);
        assert_eq!(bad_count(&m0, cfg), 0);
        let mut m = m0.clone();
        assert_eq!(refine_sequential(&mut m, cfg, 10), 0);
        let (_, mut op) = DelaunayOp::with_auto_capacity(&m0, cfg);
        assert!(op.initial_tasks().is_empty());
    }

    #[test]
    fn with_adaptive_controller_end_to_end() {
        let m0 = square_mesh(12, 9);
        let cfg = RefineConfig::area_only(0.004);
        let (space, mut op) = DelaunayOp::with_auto_capacity(&m0, cfg);
        let tasks = op.initial_tasks();
        let ex = Executor::new(&op, &space, ExecutorConfig::default());
        let mut rng = StdRng::seed_from_u64(10);
        let mut ws = WorkSet::from_vec(tasks);
        let mut ctl = HybridController::with_rho(0.25);
        let run = ex.run_with_controller(&mut ws, &mut ctl, 1_000_000, &mut rng);
        assert!(ws.is_empty());
        assert!(run.total_committed() > 0);
        let m = op.into_mesh();
        assert_eq!(bad_count(&m, cfg), 0);
        m.check_valid().unwrap();
    }
}

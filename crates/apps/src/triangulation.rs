//! Triangle-mesh data structure and sequential Delaunay triangulation
//! (Bowyer–Watson incremental insertion).
//!
//! This is the substrate beneath the Delaunay-refinement application:
//! the paper's motivating workload needs an initial triangulation to
//! refine and a mesh representation whose *cavities* (the conflict
//! neighbourhoods) can be discovered and replaced. The structure is a
//! triangle soup with adjacency:
//!
//! * vertices of triangle `t` are CCW: `v[0], v[1], v[2]`;
//! * `nbr[i]` is the triangle across the edge *opposite* `v[i]`, i.e.
//!   the edge `(v[i+1], v[i+2])`; [`NO_TRI`] marks the hull.

use crate::geometry::{self, Orientation, Point};
use std::collections::HashMap;

/// Sentinel: no neighbouring triangle (convex-hull edge).
pub const NO_TRI: u32 = u32::MAX;

/// One triangle of the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tri {
    /// Vertex indices, counter-clockwise.
    pub v: [u32; 3],
    /// `nbr[i]` shares edge `(v[i+1 mod 3], v[i+2 mod 3])`.
    pub nbr: [u32; 3],
    /// Dead triangles are tombstones left by cavity retriangulation.
    pub alive: bool,
}

impl Tri {
    /// A fresh triangle with no neighbours.
    pub fn new(a: u32, b: u32, c: u32) -> Self {
        Tri {
            v: [a, b, c],
            nbr: [NO_TRI; 3],
            alive: true,
        }
    }

    /// The local index (0–2) of vertex `x`, if present.
    pub fn index_of(&self, x: u32) -> Option<usize> {
        self.v.iter().position(|&w| w == x)
    }

    /// The local index of the edge `(a, b)` in either orientation:
    /// returns `i` such that `{v[i+1], v[i+2]} == {a, b}`.
    pub fn edge_index(&self, a: u32, b: u32) -> Option<usize> {
        (0..3).find(|&i| {
            let p = self.v[(i + 1) % 3];
            let q = self.v[(i + 2) % 3];
            (p == a && q == b) || (p == b && q == a)
        })
    }
}

/// A planar triangulation.
#[derive(Clone, Debug, Default)]
pub struct Mesh {
    /// Vertex coordinates (including any ghost points).
    pub points: Vec<Point>,
    /// Triangle soup with adjacency; includes dead tombstones.
    pub tris: Vec<Tri>,
    /// The first `ghost_count` points are super-triangle ("ghost")
    /// vertices: treated as points at infinity by the in-circle test,
    /// which prevents hull slivers from being swallowed by the super
    /// triangle. After [`Mesh::delaunay`] strips the super triangles,
    /// no live triangle references them, but the count is kept so
    /// later insertions stay correct.
    pub ghost_count: usize,
}

impl Mesh {
    /// Delaunay-triangulate a point set by incremental insertion
    /// (Bowyer–Watson) under a super-triangle that is removed at the
    /// end. The result covers the convex hull of the input.
    ///
    /// # Panics
    /// Panics if fewer than 3 points are given or all points are
    /// collinear.
    pub fn delaunay(points: &[Point]) -> Mesh {
        assert!(points.len() >= 3, "need at least 3 points");
        // Super-triangle big enough to contain everything.
        let (mut minx, mut miny, mut maxx, mut maxy) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in points {
            minx = minx.min(p.x);
            miny = miny.min(p.y);
            maxx = maxx.max(p.x);
            maxy = maxy.max(p.y);
        }
        let d = (maxx - minx).max(maxy - miny).max(1.0);
        let cx = (minx + maxx) / 2.0;
        let cy = (miny + maxy) / 2.0;
        let s0 = Point::new(cx - 20.0 * d, cy - 10.0 * d);
        let s1 = Point::new(cx + 20.0 * d, cy - 10.0 * d);
        let s2 = Point::new(cx, cy + 20.0 * d);

        let mut mesh = Mesh {
            points: vec![s0, s1, s2],
            tris: vec![Tri::new(0, 1, 2)],
            ghost_count: 3,
        };
        for &p in points {
            let v = mesh.points.len() as u32;
            mesh.points.push(p);
            let containing = mesh
                .locate(p, 0)
                .expect("every input point lies inside the super-triangle");
            mesh.insert_into(v, containing);
        }
        // Remove triangles touching the super-triangle's vertices.
        for t in 0..mesh.tris.len() {
            if mesh.tris[t].alive && mesh.tris[t].v.iter().any(|&x| x < 3) {
                mesh.kill_tri(t as u32);
            }
        }
        let live = mesh.tris.iter().filter(|t| t.alive).count();
        assert!(live > 0, "input points are collinear");
        mesh
    }

    /// Number of live triangles.
    pub fn live_count(&self) -> usize {
        self.tris.iter().filter(|t| t.alive).count()
    }

    /// Indices of all live triangles.
    pub fn live_tris(&self) -> Vec<u32> {
        (0..self.tris.len() as u32)
            .filter(|&t| self.tris[t as usize].alive)
            .collect()
    }

    /// The corner points of triangle `t`.
    pub fn corners(&self, t: u32) -> [Point; 3] {
        let tri = &self.tris[t as usize];
        [
            self.points[tri.v[0] as usize],
            self.points[tri.v[1] as usize],
            self.points[tri.v[2] as usize],
        ]
    }

    /// Locate a live triangle containing `p` by walking from `hint`.
    /// Returns `None` if `p` is outside the triangulated region.
    pub fn locate(&self, p: Point, hint: u32) -> Option<u32> {
        let mut t = hint;
        if self.tris.is_empty() {
            return None;
        }
        if !self.tris[t as usize].alive {
            t = self.live_tris().first().copied()?;
        }
        let mut steps = 0usize;
        let max_steps = 4 * self.tris.len() + 16;
        'walk: loop {
            steps += 1;
            if steps > max_steps {
                // Pathological walk (should not happen on Delaunay
                // meshes); fall back to exhaustive search.
                return self.locate_linear(p);
            }
            let tri = &self.tris[t as usize];
            for i in 0..3 {
                let a = self.points[tri.v[(i + 1) % 3] as usize];
                let b = self.points[tri.v[(i + 2) % 3] as usize];
                if geometry::orient2d(a, b, p) == Orientation::Cw {
                    // p is strictly outside across edge (a, b).
                    let n = tri.nbr[i];
                    if n == NO_TRI {
                        return None;
                    }
                    t = n;
                    continue 'walk;
                }
            }
            return Some(t);
        }
    }

    fn locate_linear(&self, p: Point) -> Option<u32> {
        (0..self.tris.len() as u32).find(|&t| {
            let tri = &self.tris[t as usize];
            tri.alive && {
                let [a, b, c] = self.corners(t);
                geometry::point_in_triangle(a, b, c, p)
            }
        })
    }

    /// Is `p` inside the circumdisk of live triangle `t`, treating
    /// ghost vertices as points at infinity?
    ///
    /// * no ghost vertex — the geometric in-circle test;
    /// * one ghost vertex — the limit circumcircle is the open
    ///   half-plane beyond the triangle's real edge (plus the edge
    ///   line itself, so collinear hull points reconnect correctly);
    /// * two+ ghost vertices — geometric test on the actual (far-away)
    ///   coordinates; such triangles exist only at the super-triangle
    ///   corners where precision is a non-issue.
    pub fn in_disk(&self, t: u32, p: Point) -> bool {
        let tri = &self.tris[t as usize];
        let g = self.ghost_count as u32;
        let ghost_local = (0..3).find(|&i| tri.v[i] < g);
        let ghosts = tri.v.iter().filter(|&&v| v < g).count();
        if ghosts == 1 {
            let i = ghost_local.expect("counted one ghost");
            let a = self.points[tri.v[(i + 1) % 3] as usize];
            let b = self.points[tri.v[(i + 2) % 3] as usize];
            // CCW triangle with the ghost on the left of (a, b): the
            // real region is on the right, the disk is the left side.
            return geometry::orient2d(a, b, p) != geometry::Orientation::Cw;
        }
        let [a, b, c] = self.corners(t);
        geometry::in_circle(a, b, c, p)
    }

    /// The Bowyer–Watson cavity of point `p` seeded at live triangle
    /// `seed`: the connected set of live triangles whose circumdisk
    /// contains `p` (see [`Mesh::in_disk`]).
    pub fn cavity(&self, p: Point, seed: u32) -> Vec<u32> {
        debug_assert!(self.tris[seed as usize].alive);
        let mut cavity = vec![seed];
        let mut seen = HashMap::new();
        seen.insert(seed, ());
        let mut stack = vec![seed];
        while let Some(t) = stack.pop() {
            for i in 0..3 {
                let n = self.tris[t as usize].nbr[i];
                if n == NO_TRI || seen.contains_key(&n) {
                    continue;
                }
                debug_assert!(self.tris[n as usize].alive, "live tri adjacent to dead tri");
                if self.in_disk(n, p) {
                    seen.insert(n, ());
                    cavity.push(n);
                    stack.push(n);
                }
            }
        }
        cavity
    }

    /// Insert vertex `v` (already pushed to `points`) whose position
    /// lies in live triangle `containing`; retriangulates the cavity.
    /// Returns the indices of the newly created triangles.
    pub fn insert_into(&mut self, v: u32, containing: u32) -> Vec<u32> {
        let p = self.points[v as usize];
        let cavity = self.cavity(p, containing);
        self.retriangulate(v, &cavity)
    }

    /// Replace `cavity` (live triangles whose circumcircles contain
    /// vertex `v`'s position) with a fan of triangles around `v`.
    pub fn retriangulate(&mut self, v: u32, cavity: &[u32]) -> Vec<u32> {
        let in_cavity: HashMap<u32, ()> = cavity.iter().map(|&t| (t, ())).collect();
        // Collect directed boundary edges (a -> b in the CCW order of
        // their cavity triangle) with the outside neighbour.
        let mut boundary: Vec<(u32, u32, u32)> = Vec::new();
        for &t in cavity {
            let tri = self.tris[t as usize];
            for i in 0..3 {
                let n = tri.nbr[i];
                if n != NO_TRI && in_cavity.contains_key(&n) {
                    continue;
                }
                let a = tri.v[(i + 1) % 3];
                let b = tri.v[(i + 2) % 3];
                boundary.push((a, b, n));
            }
        }
        // Kill cavity triangles.
        for &t in cavity {
            self.tris[t as usize].alive = false;
        }
        // One new triangle per boundary edge: (a, b, v) is CCW because
        // (a, b) was CCW in its cavity triangle and v lies inside the
        // cavity.
        let base = self.tris.len() as u32;
        let mut by_start: HashMap<u32, u32> = HashMap::new();
        let mut by_end: HashMap<u32, u32> = HashMap::new();
        for (k, &(a, b, _)) in boundary.iter().enumerate() {
            by_start.insert(a, base + k as u32);
            by_end.insert(b, base + k as u32);
        }
        let mut created = Vec::with_capacity(boundary.len());
        for (k, &(a, b, outer)) in boundary.iter().enumerate() {
            let t = base + k as u32;
            let mut tri = Tri::new(a, b, v);
            // Edge (a, b) is opposite v = v[2].
            tri.nbr[2] = outer;
            // Edge (b, v) is opposite a = v[0]; shared with the new
            // triangle whose boundary edge starts at b.
            tri.nbr[0] = *by_start
                .get(&b)
                .expect("cavity boundary must be a closed loop");
            // Edge (v, a) is opposite b = v[1]; shared with the new
            // triangle whose boundary edge ends at a.
            tri.nbr[1] = *by_end
                .get(&a)
                .expect("cavity boundary must be a closed loop");
            self.tris.push(tri);
            created.push(t);
            // Patch the outer neighbour's back-pointer.
            if outer != NO_TRI {
                let o = &mut self.tris[outer as usize];
                let e = o
                    .edge_index(a, b)
                    .expect("outer neighbour must share the boundary edge");
                o.nbr[e] = t;
            }
        }
        created
    }

    /// Kill triangle `t`, detaching neighbours (used to strip the
    /// super-triangle).
    fn kill_tri(&mut self, t: u32) {
        let tri = self.tris[t as usize];
        for i in 0..3 {
            let n = tri.nbr[i];
            if n != NO_TRI {
                let ntri = &mut self.tris[n as usize];
                for j in 0..3 {
                    if ntri.nbr[j] == t {
                        ntri.nbr[j] = NO_TRI;
                    }
                }
            }
        }
        self.tris[t as usize].alive = false;
    }

    /// Total area of live triangles.
    pub fn total_area(&self) -> f64 {
        self.live_tris()
            .iter()
            .map(|&t| {
                let [a, b, c] = self.corners(t);
                geometry::area(a, b, c)
            })
            .sum()
    }

    /// Structural validity: live triangles are CCW, adjacency is
    /// symmetric and edge-consistent, and no live triangle borders a
    /// dead one.
    pub fn check_valid(&self) -> Result<(), String> {
        for t in self.live_tris() {
            let tri = &self.tris[t as usize];
            let [a, b, c] = self.corners(t);
            if geometry::orient2d(a, b, c) != Orientation::Ccw {
                return Err(format!("triangle {t} is not CCW"));
            }
            for i in 0..3 {
                let n = tri.nbr[i];
                if n == NO_TRI {
                    continue;
                }
                let ntri = &self.tris[n as usize];
                if !ntri.alive {
                    return Err(format!("live triangle {t} borders dead {n}"));
                }
                let p = tri.v[(i + 1) % 3];
                let q = tri.v[(i + 2) % 3];
                match ntri.edge_index(p, q) {
                    None => {
                        return Err(format!(
                            "neighbour {n} of {t} does not share edge ({p}, {q})"
                        ))
                    }
                    Some(j) => {
                        if ntri.nbr[j] != t {
                            return Err(format!("adjacency not symmetric between {t} and {n}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Delaunay property: no live triangle's circumcircle strictly
    /// contains the apex of a live neighbour.
    pub fn check_delaunay(&self) -> Result<(), String> {
        for t in self.live_tris() {
            let tri = &self.tris[t as usize];
            let [a, b, c] = self.corners(t);
            for i in 0..3 {
                let n = tri.nbr[i];
                if n == NO_TRI {
                    continue;
                }
                let ntri = &self.tris[n as usize];
                let p = tri.v[(i + 1) % 3];
                let q = tri.v[(i + 2) % 3];
                // The neighbour's vertex that is not on the shared edge.
                let apex = ntri
                    .v
                    .iter()
                    .copied()
                    .find(|&x| x != p && x != q)
                    .expect("neighbour has an apex");
                if geometry::in_circle(a, b, c, self.points[apex as usize]) {
                    return Err(format!(
                        "triangle {t}'s circumcircle contains apex {apex} of {n}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random::<f64>(), rng.random::<f64>()))
            .collect()
    }

    #[test]
    fn square_triangulation() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let m = Mesh::delaunay(&pts);
        assert_eq!(m.live_count(), 2);
        m.check_valid().unwrap();
        m.check_delaunay().unwrap();
        assert!((m.total_area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_triangulations_are_delaunay() {
        for seed in 0..5 {
            let pts = random_points(60, seed);
            let m = Mesh::delaunay(&pts);
            m.check_valid().unwrap();
            m.check_delaunay().unwrap();
            // Euler: for a convex-hull triangulation with h hull
            // vertices and n total, triangles = 2n - h - 2. We don't
            // compute h; check bounds instead.
            let t = m.live_count();
            assert!((60 - 2..=2 * 60 - 5).contains(&t), "{t} triangles");
        }
    }

    #[test]
    fn area_equals_hull_area() {
        // For points in a unit square including corners, hull = square.
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        pts.extend(random_points(40, 9));
        let m = Mesh::delaunay(&pts);
        m.check_valid().unwrap();
        assert!((m.total_area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn locate_finds_containing_triangle() {
        let pts = random_points(50, 3);
        let m = Mesh::delaunay(&pts);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            // Interior queries only (hull margin).
            let q = Point::new(
                0.1 + 0.8 * rng.random::<f64>(),
                0.1 + 0.8 * rng.random::<f64>(),
            );
            // Hull may still exclude q if the random points don't cover
            // the corner regions; accept None only if linear search
            // agrees.
            let t = m.locate(q, 0);
            assert_eq!(t.is_some(), m.locate_linear(q).is_some());
            if let Some(t) = t {
                let [a, b, c] = m.corners(t);
                assert!(geometry::point_in_triangle(a, b, c, q));
            }
        }
    }

    #[test]
    fn locate_outside_returns_none() {
        let pts = random_points(30, 5);
        let m = Mesh::delaunay(&pts);
        assert_eq!(m.locate(Point::new(50.0, 50.0), 0), None);
    }

    #[test]
    fn insertion_preserves_invariants() {
        let pts = random_points(30, 6);
        let mut m = Mesh::delaunay(&pts);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let q = Point::new(
                0.2 + 0.6 * rng.random::<f64>(),
                0.2 + 0.6 * rng.random::<f64>(),
            );
            if let Some(t) = m.locate(q, 0) {
                let v = m.points.len() as u32;
                m.points.push(q);
                let created = m.insert_into(v, t);
                assert!(created.len() >= 3);
                m.check_valid().unwrap();
                m.check_delaunay().unwrap();
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_points_panics() {
        let _ = Mesh::delaunay(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
    }

    #[test]
    fn collinear_detected() {
        let r = std::panic::catch_unwind(|| {
            Mesh::delaunay(&[
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ])
        });
        assert!(r.is_err(), "collinear input must be rejected");
    }

    #[test]
    fn tri_helpers() {
        let t = Tri::new(5, 6, 7);
        assert_eq!(t.index_of(6), Some(1));
        assert_eq!(t.index_of(9), None);
        assert_eq!(t.edge_index(6, 7), Some(0));
        assert_eq!(t.edge_index(7, 5), Some(1));
        assert_eq!(t.edge_index(5, 6), Some(2));
        assert_eq!(t.edge_index(5, 9), None);
    }
}

//! Greedy graph colouring as a speculative application.
//!
//! One task per node: read the neighbours' colours, take the smallest
//! colour absent from the neighbourhood. Tasks of adjacent nodes
//! conflict (they read/write each other's slots), giving a conflict
//! graph identical to the input graph — the cleanest real workload for
//! comparing against the paper's model.

use optpar_graph::{ConflictGraph, CsrGraph, NodeId};
use optpar_runtime::{Abort, LockSpace, Operator, SpecStore, TaskCtx};

/// Colour value for "not yet coloured".
pub const UNCOLORED: u32 = u32::MAX;

/// The speculative colouring operator.
pub struct ColoringOp {
    /// The graph to colour.
    pub graph: CsrGraph,
    /// Colour per node (`UNCOLORED` until decided).
    pub color: SpecStore<u32>,
}

impl ColoringOp {
    /// Build stores and locks for `graph`.
    pub fn new(graph: CsrGraph) -> (LockSpace, ColoringOp) {
        let mut b = LockSpace::builder();
        let r = b.region(graph.node_count());
        let space = b.build();
        let color = SpecStore::filled(r, graph.node_count(), UNCOLORED);
        (space, ColoringOp { graph, color })
    }

    /// One task per node.
    pub fn initial_tasks(&self) -> Vec<NodeId> {
        (0..self.graph.node_count() as NodeId).collect()
    }

    /// Final colours (quiesced).
    pub fn colors(&mut self) -> Vec<u32> {
        self.color.snapshot()
    }

    /// Validate a proper colouring with at most `Δ + 1` colours.
    pub fn validate(graph: &CsrGraph, colors: &[u32]) -> Result<(), String> {
        let maxdeg = graph.max_degree() as u32;
        for v in 0..graph.node_count() as NodeId {
            let cv = colors[v as usize];
            if cv == UNCOLORED {
                return Err(format!("node {v} uncoloured"));
            }
            if cv > maxdeg {
                return Err(format!("node {v} uses colour {cv} > Δ = {maxdeg}"));
            }
            for &w in graph.neighbors_slice(v) {
                if colors[w as usize] == cv {
                    return Err(format!("edge ({v}, {w}) monochromatic ({cv})"));
                }
            }
        }
        Ok(())
    }
}

impl Operator for ColoringOp {
    type Task = NodeId;

    fn execute(&self, &v: &NodeId, cx: &mut TaskCtx<'_>) -> Result<Vec<NodeId>, Abort> {
        let vi = v as usize;
        cx.lock(&self.color, vi)?;
        for &w in self.graph.neighbors_slice(v) {
            cx.lock(&self.color, w as usize)?;
        }
        if *cx.read(&self.color, vi)? != UNCOLORED {
            return Ok(vec![]); // idempotent re-execution
        }
        // Gather neighbour colours; degree is small, a bitset-in-vec
        // suffices.
        let deg = self.graph.degree(v);
        let mut used = vec![false; deg + 1];
        for &w in self.graph.neighbors_slice(v) {
            let c = *cx.read(&self.color, w as usize)?;
            if (c as usize) < used.len() {
                used[c as usize] = true;
            }
        }
        let c = used.iter().position(|&u| !u).expect("d+1 colours suffice") as u32;
        *cx.write(&self.color, vi)? = c;
        Ok(vec![])
    }
}

/// Sequential reference: greedy colouring in the given order.
pub fn sequential_coloring(graph: &CsrGraph, order: &[NodeId]) -> Vec<u32> {
    let mut colors = vec![UNCOLORED; graph.node_count()];
    for &v in order {
        let deg = graph.degree(v);
        let mut used = vec![false; deg + 1];
        for &w in graph.neighbors_slice(v) {
            let c = colors[w as usize];
            if (c as usize) < used.len() {
                used[c as usize] = true;
            }
        }
        colors[v as usize] = used.iter().position(|&u| !u).unwrap() as u32;
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_graph::gen;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_coloring(g: &CsrGraph, workers: usize, m: usize, seed: u64) -> Vec<u32> {
        let (space, op) = ColoringOp::new(g.clone());
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
        }
        let mut op = op;
        op.colors()
    }

    #[test]
    fn sequential_reference_proper() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_with_avg_degree(150, 7.0, &mut rng);
        let order: Vec<NodeId> = (0..150).collect();
        ColoringOp::validate(&g, &sequential_coloring(&g, &order)).unwrap();
    }

    #[test]
    fn speculative_proper_sequential_worker() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_with_avg_degree(100, 6.0, &mut rng);
        ColoringOp::validate(&g, &run_coloring(&g, 1, 12, 3)).unwrap();
    }

    #[test]
    fn speculative_proper_parallel() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::random_with_avg_degree(400, 10.0, &mut rng);
        ColoringOp::validate(&g, &run_coloring(&g, 8, 64, 5)).unwrap();
    }

    #[test]
    fn bipartite_uses_two_colors() {
        // Even cycle: chromatic number 2; greedy may use 2 (it cannot
        // exceed Δ+1 = 3, and on a cycle the greedy first-fit uses ≤ 3).
        let g = {
            let mut b = optpar_graph::GraphBuilder::new(20);
            let nodes: Vec<NodeId> = (0..20).collect();
            b.cycle(&nodes);
            b.build()
        };
        let colors = run_coloring(&g, 4, 8, 6);
        ColoringOp::validate(&g, &colors).unwrap();
        assert!(colors.iter().all(|&c| c <= 2));
    }

    #[test]
    fn complete_graph_uses_n_colors() {
        let g = gen::complete(10);
        let colors = run_coloring(&g, 4, 10, 7);
        ColoringOp::validate(&g, &colors).unwrap();
        let mut sorted = colors.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn grid_stays_within_five_colors() {
        let g = gen::grid(12, 12);
        let colors = run_coloring(&g, 4, 30, 8);
        ColoringOp::validate(&g, &colors).unwrap();
        assert!(colors.iter().all(|&c| c <= 4), "grid Δ = 4");
    }
}

//! Survey propagation (Braunstein–Mézard–Zecchina) for random k-SAT —
//! the first workload the paper's introduction lists.
//!
//! SP is a message-passing algorithm on the clause/variable factor
//! graph: each clause `a` sends each of its variables `i` a *survey*
//! `η_{a→i} ∈ [0, 1]` — the probability that `a` warns `i` to satisfy
//! it. Updating one clause's outgoing surveys reads the surveys of all
//! clauses sharing a variable with it, so the conflict graph of
//! clause-update tasks is the clause co-occurrence graph: classic
//! amorphous data-parallelism with data-dependent, sparse conflicts.
//!
//! The speculative formulation: one task per clause; a task recomputes
//! its three outgoing surveys and re-spawns its *neighbour clauses*
//! when the surveys moved by more than the tolerance (chaotic
//! relaxation). The fixed point is validated against a sequential
//! Gauss–Seidel reference, and on under-constrained instances
//! convergence to the paramagnetic point (all surveys → 0) is
//! asserted, as predicted by the theory.

use optpar_runtime::{Abort, LockSpace, Operator, SpecStore, TaskCtx};
use rand::Rng;

/// A literal: variable index plus polarity (`neg = true` for `¬x`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lit {
    /// Variable index.
    pub var: u32,
    /// Negated occurrence?
    pub neg: bool,
}

/// A k-SAT formula in fixed-width clause form.
#[derive(Clone, Debug)]
pub struct Formula {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// Each clause is `K` literals over distinct variables.
    pub clauses: Vec<[Lit; 3]>,
}

impl Formula {
    /// Uniform random 3-SAT: `m` clauses over `n ≥ 3` variables, each
    /// with three distinct variables and fair-coin polarities.
    pub fn random_3sat<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Formula {
        assert!(n >= 3, "need at least 3 variables");
        let clauses = (0..m)
            .map(|_| {
                let idx = rand::seq::index::sample(rng, n, 3);
                let mut pick = |i: usize| Lit {
                    var: idx.index(i) as u32,
                    neg: rng.random::<bool>(),
                };
                [pick(0), pick(1), pick(2)]
            })
            .collect();
        Formula {
            num_vars: n,
            clauses,
        }
    }

    /// Clause-to-variable occurrence lists: for each variable, the
    /// `(clause, slot)` pairs where it appears.
    pub fn occurrences(&self) -> Vec<Vec<(u32, usize)>> {
        let mut occ = vec![Vec::new(); self.num_vars];
        for (c, clause) in self.clauses.iter().enumerate() {
            for (s, lit) in clause.iter().enumerate() {
                occ[lit.var as usize].push((c as u32, s));
            }
        }
        occ
    }

    /// Neighbouring clauses of each clause (sharing ≥ 1 variable),
    /// deduplicated, self excluded.
    pub fn clause_neighbors(&self) -> Vec<Vec<u32>> {
        let occ = self.occurrences();
        let mut out = vec![Vec::new(); self.clauses.len()];
        for (c, clause) in self.clauses.iter().enumerate() {
            let mut nb: Vec<u32> = clause
                .iter()
                .flat_map(|l| occ[l.var as usize].iter().map(|&(b, _)| b))
                .filter(|&b| b as usize != c)
                .collect();
            nb.sort_unstable();
            nb.dedup();
            out[c] = nb;
        }
        out
    }
}

/// Compute the three outgoing surveys of clause `c`, given a lookup
/// for any clause's current surveys (`get(clause, slot) -> η`).
///
/// The canonical SP update: for each variable `j` of `c`, aggregate
/// the surveys of the *other* clauses containing `j`, split by whether
/// `j` appears there with the same or opposite polarity as in `c`.
fn sp_update(
    formula: &Formula,
    occ: &[Vec<(u32, usize)>],
    c: usize,
    mut get: impl FnMut(u32, usize) -> f64,
) -> [f64; 3] {
    let clause = &formula.clauses[c];
    // For each member variable j, the probability weights that j is
    // forced toward/away from satisfying c.
    let mut forced: [f64; 3] = [0.0; 3];
    for (s, lit) in clause.iter().enumerate() {
        let mut prod_same = 1.0; // ∏ (1 − η) over clauses agreeing with lit
        let mut prod_opp = 1.0; // ∏ (1 − η) over clauses opposing lit
        for &(b, bs) in &occ[lit.var as usize] {
            if b as usize == c {
                continue;
            }
            let eta = get(b, bs);
            let same = formula.clauses[b as usize][bs].neg == lit.neg;
            if same {
                prod_same *= 1.0 - eta;
            } else {
                prod_opp *= 1.0 - eta;
            }
        }
        let pi_u = (1.0 - prod_opp) * prod_same; // forced to violate c
        let pi_s = (1.0 - prod_same) * prod_opp; // forced to satisfy c
        let pi_0 = prod_same * prod_opp; // unconstrained
        let denom = pi_u + pi_s + pi_0;
        forced[s] = if denom > 0.0 { pi_u / denom } else { 0.0 };
    }
    // η_{c→i} = ∏_{j ≠ i} forced[j].
    let mut out = [0.0; 3];
    for (i, o) in out.iter_mut().enumerate() {
        let mut eta = 1.0;
        for (j, &fj) in forced.iter().enumerate() {
            if j != i {
                eta *= fj;
            }
        }
        *o = eta;
    }
    out
}

/// Sequential Gauss–Seidel SP solver (reference implementation).
///
/// Returns `(surveys, sweeps)` on convergence (`max |Δη| < tol`) or
/// `None` if `max_sweeps` is exceeded without converging.
pub fn sp_sequential(
    formula: &Formula,
    tol: f64,
    max_sweeps: usize,
    init: f64,
) -> Option<(Vec<[f64; 3]>, usize)> {
    let occ = formula.occurrences();
    let mut eta = vec![[init; 3]; formula.clauses.len()];
    for sweep in 1..=max_sweeps {
        let mut max_delta = 0.0f64;
        for c in 0..formula.clauses.len() {
            let new = sp_update(formula, &occ, c, |b, s| eta[b as usize][s]);
            for s in 0..3 {
                max_delta = max_delta.max((new[s] - eta[c][s]).abs());
            }
            eta[c] = new;
        }
        if max_delta < tol {
            return Some((eta, sweep));
        }
    }
    None
}

/// Per-variable biases `(plus, minus, zero)` from converged surveys
/// (used by decimation; also a convenient validation surface).
pub fn biases(formula: &Formula, eta: &[[f64; 3]]) -> Vec<(f64, f64, f64)> {
    let occ = formula.occurrences();
    (0..formula.num_vars)
        .map(|v| {
            let mut prod_pos = 1.0; // clauses where v appears positively
            let mut prod_neg = 1.0;
            for &(b, s) in &occ[v] {
                let e = 1.0 - eta[b as usize][s];
                if formula.clauses[b as usize][s].neg {
                    prod_neg *= e;
                } else {
                    prod_pos *= e;
                }
            }
            let pi_plus = (1.0 - prod_pos) * prod_neg;
            let pi_minus = (1.0 - prod_neg) * prod_pos;
            let pi_zero = prod_pos * prod_neg;
            let z = pi_plus + pi_minus + pi_zero;
            if z > 0.0 {
                (pi_plus / z, pi_minus / z, pi_zero / z)
            } else {
                (0.0, 0.0, 1.0)
            }
        })
        .collect()
}

/// The speculative SP operator: one task per clause.
pub struct SurveyOp {
    /// The formula being solved.
    pub formula: Formula,
    occ: Vec<Vec<(u32, usize)>>,
    neighbors: Vec<Vec<u32>>,
    /// Outgoing surveys per clause.
    pub eta: SpecStore<[f64; 3]>,
    /// Convergence tolerance: a task re-spawns its neighbours only if
    /// one of its surveys moved by at least this much.
    pub tol: f64,
}

impl SurveyOp {
    /// Build stores and locks; all surveys start at `init`.
    pub fn new(formula: Formula, tol: f64, init: f64) -> (LockSpace, SurveyOp) {
        let m = formula.clauses.len();
        let mut b = LockSpace::builder();
        let r = b.region(m);
        let space = b.build();
        let occ = formula.occurrences();
        let neighbors = formula.clause_neighbors();
        let eta = SpecStore::filled(r, m, [init; 3]);
        (
            space,
            SurveyOp {
                formula,
                occ,
                neighbors,
                eta,
                tol,
            },
        )
    }

    /// One task per clause.
    pub fn initial_tasks(&self) -> Vec<u32> {
        (0..self.formula.clauses.len() as u32).collect()
    }

    /// Converged surveys (quiesced).
    pub fn surveys(&mut self) -> Vec<[f64; 3]> {
        self.eta.snapshot()
    }
}

impl Operator for SurveyOp {
    type Task = u32;

    fn execute(&self, &c: &u32, cx: &mut TaskCtx<'_>) -> Result<Vec<u32>, Abort> {
        let ci = c as usize;
        // Lock own surveys plus every neighbour's (the read set).
        cx.lock(&self.eta, ci)?;
        for &b in &self.neighbors[ci] {
            cx.lock(&self.eta, b as usize)?;
        }
        // Gather the update inputs under locks.
        let mut cached: Vec<(u32, [f64; 3])> = Vec::with_capacity(self.neighbors[ci].len() + 1);
        cached.push((c, *cx.read(&self.eta, ci)?));
        for &b in &self.neighbors[ci] {
            let v = *cx.read(&self.eta, b as usize)?;
            cached.push((b, v));
        }
        let lookup = |b: u32, s: usize| -> f64 {
            cached
                .iter()
                .find(|&&(x, _)| x == b)
                .map(|&(_, e)| e[s])
                .expect("all read clauses are cached")
        };
        let new = sp_update(&self.formula, &self.occ, ci, lookup);
        let old = *cx.read(&self.eta, ci)?;
        let delta = (0..3)
            .map(|s| (new[s] - old[s]).abs())
            .fold(0.0f64, f64::max);
        if delta < self.tol {
            return Ok(vec![]); // converged locally: quiesce
        }
        *cx.write(&self.eta, ci)? = new;
        // Chaotic relaxation: wake the neighbours (and ourselves, since
        // our own inputs may still be stale).
        let mut spawn = self.neighbors[ci].clone();
        spawn.push(c);
        Ok(spawn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lit(var: u32, neg: bool) -> Lit {
        Lit { var, neg }
    }

    #[test]
    fn random_formula_wellformed() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = Formula::random_3sat(20, 60, &mut rng);
        assert_eq!(f.clauses.len(), 60);
        for c in &f.clauses {
            assert_ne!(c[0].var, c[1].var);
            assert_ne!(c[0].var, c[2].var);
            assert_ne!(c[1].var, c[2].var);
            assert!(c.iter().all(|l| (l.var as usize) < 20));
        }
        let occ = f.occurrences();
        assert_eq!(occ.iter().map(Vec::len).sum::<usize>(), 180);
    }

    #[test]
    fn isolated_clause_has_zero_surveys() {
        // A single clause has no neighbours: every Π^u is 0, so all
        // outgoing surveys are 0 after one update.
        let f = Formula {
            num_vars: 3,
            clauses: vec![[lit(0, false), lit(1, true), lit(2, false)]],
        };
        let (eta, sweeps) = sp_sequential(&f, 1e-12, 10, 0.7).unwrap();
        assert!(sweeps <= 2);
        assert_eq!(eta[0], [0.0; 3]);
    }

    #[test]
    fn two_opposing_clauses_hand_computed() {
        // c0 = (x ∨ y ∨ z), c1 = (¬x ∨ u ∨ v), initial η = 1.
        // After convergence both clauses' surveys go to 0: each
        // variable has at most one opposing clause whose own survey
        // dies because *its* other variables are unconstrained.
        let f = Formula {
            num_vars: 5,
            clauses: vec![
                [lit(0, false), lit(1, false), lit(2, false)],
                [lit(0, true), lit(3, false), lit(4, false)],
            ],
        };
        let (eta, _) = sp_sequential(&f, 1e-12, 50, 1.0).unwrap();
        for e in &eta {
            for &x in e {
                assert!(x.abs() < 1e-9, "{eta:?}");
            }
        }
    }

    #[test]
    fn underconstrained_converges_to_paramagnetic_point() {
        // α = m/n = 1.0 ≪ α_d ≈ 3.9: SP must converge to η ≡ 0.
        let mut rng = StdRng::seed_from_u64(2);
        let f = Formula::random_3sat(100, 100, &mut rng);
        let (eta, _) = sp_sequential(&f, 1e-9, 2000, 0.5).expect("must converge");
        let max = eta
            .iter()
            .flat_map(|e| e.iter())
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(
            max < 1e-6,
            "paramagnetic fixed point expected, max η = {max}"
        );
    }

    #[test]
    fn surveys_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = Formula::random_3sat(60, 240, &mut rng); // α = 4, near-critical
                                                         // Even without convergence, every intermediate η must stay in
                                                         // [0, 1]; run a bounded number of sweeps.
        let occ = f.occurrences();
        let mut eta = vec![[0.9; 3]; f.clauses.len()];
        for _ in 0..30 {
            for c in 0..f.clauses.len() {
                let new = sp_update(&f, &occ, c, |b, s| eta[b as usize][s]);
                for &x in &new {
                    assert!((0.0..=1.0).contains(&x));
                }
                eta[c] = new;
            }
        }
    }

    #[test]
    fn biases_are_distributions() {
        let mut rng = StdRng::seed_from_u64(4);
        let f = Formula::random_3sat(50, 150, &mut rng);
        let (eta, _) = sp_sequential(&f, 1e-9, 2000, 0.5).unwrap();
        for (p, m, z) in biases(&f, &eta) {
            assert!((p + m + z - 1.0).abs() < 1e-9);
            assert!(p >= 0.0 && m >= 0.0 && z >= 0.0);
        }
    }

    fn run_speculative(f: &Formula, workers: usize, m: usize, seed: u64) -> Vec<[f64; 3]> {
        let (space, op) = SurveyOp::new(f.clone(), 1e-9, 0.5);
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                policy: ConflictPolicy::FirstWins,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut rounds = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            rounds += 1;
            assert!(rounds < 2_000_000, "SP did not quiesce");
        }
        let mut op = op;
        op.surveys()
    }

    #[test]
    fn speculative_matches_sequential_fixed_point() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = Formula::random_3sat(60, 120, &mut rng); // α = 2
        let (seq, _) = sp_sequential(&f, 1e-9, 2000, 0.5).unwrap();
        let spec = run_speculative(&f, 2, 16, 6);
        for (a, b) in seq.iter().zip(&spec) {
            for s in 0..3 {
                assert!(
                    (a[s] - b[s]).abs() < 1e-6,
                    "fixed points differ: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn speculative_parallel_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        let f = Formula::random_3sat(80, 160, &mut rng);
        let spec = run_speculative(&f, 4, 32, 8);
        let max = spec
            .iter()
            .flat_map(|e| e.iter())
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(max < 1e-6, "α = 2 must reach the paramagnetic point");
    }
}

//! Static↔dynamic footprint cross-check (end-to-end).
//!
//! The analyzer infers each operator's conflict radius d̂ and blesses
//! it into `FOOTPRINT.toml`; the checker's [`RadiusPolicy`] turns that
//! contract into a runtime assertion: every lock a seeded task acquires
//! must lie within d̂ hops of its seed element. These tests close the
//! loop on real workloads:
//!
//! * sssp (bounded, d̂ = 1) drains clean under the policy at 1 and 4
//!   workers — the inferred radius really does cover the dynamic
//!   footprint;
//! * a deliberately *widened* operator (locks 2 hops out, declares 1)
//!   is caught with a structured [`Report::RadiusExceeded`];
//! * boruvka and delaunay, whose contracts are unbounded, run with the
//!   policy installed but no `conflict_seed` — their traces carry no
//!   seed, so the check is vacuous by design (nothing sound to assert);
//! * the core-side manifest parser agrees with the blessed
//!   `FOOTPRINT.toml` about which operators are bounded.
//!
//! Build with `--features checker`.
#![cfg(feature = "checker")]

use optpar_apps::boruvka::{BoruvkaOp, WeightedGraph};
use optpar_apps::delaunay::{DelaunayOp, RefineConfig};
use optpar_apps::geometry::Point;
use optpar_apps::sssp::{SsspInput, SsspOp};
use optpar_apps::triangulation::Mesh;
use optpar_core::footprint::{footprint_for, parse_footprints};
use optpar_graph::{gen, ConflictGraph, CsrGraph};
use optpar_runtime::checker::{CheckerMode, RadiusPolicy, Report};
use optpar_runtime::{
    Abort, Executor, ExecutorConfig, LockSpace, Operator, SpecStore, TaskCtx, WorkSet,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The blessed manifest, baked in so the tests always check HEAD's
/// contracts.
const FOOTPRINT_TOML: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../FOOTPRINT.toml"));

/// All-pairs BFS hop distances of `g` (u32::MAX = unreachable).
fn bfs_all_pairs(g: &CsrGraph) -> Vec<Vec<u32>> {
    let n = g.node_count();
    (0..n)
        .map(|s| {
            let mut dist = vec![u32::MAX; n];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::from([s as u32]);
            while let Some(u) = queue.pop_front() {
                let du = dist[u as usize];
                for &v in g.neighbors_slice(u) {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
            dist
        })
        .collect()
}

/// A radius policy whose hop metric is BFS distance on `g`, with the
/// store's lock region mapped back to nodes (locks outside `[base,
/// base + n)` are auxiliary and exempt).
fn graph_policy(g: &CsrGraph, base: usize, radius: u32) -> RadiusPolicy {
    let n = g.node_count();
    let dist = bfs_all_pairs(g);
    RadiusPolicy {
        radius,
        dist: Box::new(move |seed, lock| {
            let s = (seed as usize).checked_sub(base)?;
            let l = lock.checked_sub(base)?;
            if s >= n || l >= n {
                return None;
            }
            Some(dist[s][l])
        }),
    }
}

/// sssp declares d̂ = 1 and implements `conflict_seed`; under the
/// BFS-distance policy every acquired lock must sit within one hop of
/// the task's node. Clean at both worker counts.
#[test]
fn sssp_traces_stay_within_declared_radius() {
    let contracts = parse_footprints(FOOTPRINT_TOML);
    let fp = footprint_for(&contracts, "SsspOp").expect("SsspOp blessed in FOOTPRINT.toml");
    assert!(fp.bounded, "SsspOp contract must be bounded");
    for workers in [1usize, 4] {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gen::random_with_avg_degree(200, 4.0, &mut rng);
        let input = SsspInput::random(g, 0, 1000, &mut rng);
        let (space, op) = SsspOp::new(input);
        let base = op.dist.region().base();
        space.audit().set_mode(CheckerMode::Collect);
        space
            .audit()
            .set_radius_policy(Some(graph_policy(&op.input.graph, base, fp.radius)));
        let ex = Executor::new(
            &op,
            &space,
            ExecutorConfig {
                workers,
                ..ExecutorConfig::default()
            },
        );
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut rounds = 0;
        while !ws.is_empty() && rounds < 100_000 {
            ex.run_round(&mut ws, 16, &mut rng);
            rounds += 1;
        }
        assert!(ws.is_empty(), "sssp did not drain at w{workers}");
        let reports = space.audit().take_reports();
        assert_eq!(
            reports,
            vec![],
            "sssp at w{workers} must stay within its declared radius"
        );
    }
}

/// A deliberately widened operator on a line graph: it declares (via
/// its seed + the installed policy) a radius of 1 but locks the slot
/// *two* hops away. The cross-check must produce a structured
/// `RadiusExceeded` naming the offending coordinates — this is the
/// failure mode the contract exists to catch (analyzer unsoundness or
/// a stale blessed radius).
struct WideOp {
    vals: SpecStore<u64>,
    n: usize,
}

impl Operator for WideOp {
    type Task = u32;

    fn execute(&self, &i: &u32, cx: &mut TaskCtx<'_>) -> Result<Vec<u32>, Abort> {
        let i = i as usize;
        cx.lock(&self.vals, i)?;
        // Out-of-contract acquisition: 2 hops along the line.
        cx.lock(&self.vals, (i + 2) % self.n)?;
        *cx.write(&self.vals, i)? += 1;
        Ok(vec![])
    }

    fn conflict_seed(&self, &i: &u32) -> Option<u64> {
        Some(self.vals.lock_of(i as usize) as u64)
    }
}

#[test]
fn widened_operator_trips_radius_exceeded() {
    const N: usize = 32;
    let mut rng = StdRng::seed_from_u64(3);
    let mut b = LockSpace::builder();
    let r = b.region(N);
    let space = b.build();
    let op = WideOp {
        vals: SpecStore::filled(r, N, 0u64),
        n: N,
    };
    let base = op.vals.region().base();
    space.audit().set_mode(CheckerMode::Collect);
    // Line-graph metric: hop distance = index distance (mod the ring).
    space.audit().set_radius_policy(Some(RadiusPolicy {
        radius: 1,
        dist: Box::new(move |seed, lock| {
            let s = (seed as usize).checked_sub(base)?;
            let l = lock.checked_sub(base)?;
            if s >= N || l >= N {
                return None;
            }
            let d = s.abs_diff(l);
            Some(d.min(N - d) as u32)
        }),
    }));
    let ex = Executor::new(
        &op,
        &space,
        ExecutorConfig {
            workers: 2,
            ..ExecutorConfig::default()
        },
    );
    let mut ws = WorkSet::from_vec((0..N as u32).collect::<Vec<_>>());
    let mut rounds = 0;
    while !ws.is_empty() && rounds < 10_000 {
        ex.run_round(&mut ws, 8, &mut rng);
        rounds += 1;
    }
    let reports = space.audit().take_reports();
    let exceeded: Vec<_> = reports
        .iter()
        .filter_map(|r| match r {
            Report::RadiusExceeded {
                seed,
                lock,
                dist,
                radius,
                ..
            } => Some((*seed, *lock, *dist, *radius)),
            _ => None,
        })
        .collect();
    assert!(
        !exceeded.is_empty(),
        "widened op must be flagged; got {reports:?}"
    );
    for (seed, lock, dist, radius) in exceeded {
        assert_eq!(radius, 1);
        assert_eq!(dist, 2, "the wide lock is exactly 2 hops out");
        let (s, l) = (seed as usize - base, lock - base);
        assert_eq!(l, (s + 2) % N, "flagged lock is the widened one");
    }
}

/// boruvka and delaunay carry *unbounded* contracts and do not
/// implement `conflict_seed`: with a policy installed their traces
/// have no seed, so the radius check is vacuous — by design, since an
/// unbounded footprint admits no sound hop bound to assert. The runs
/// must stay clean (no spurious RadiusExceeded) and still drain.
#[test]
fn unbounded_operators_are_exempt_from_the_radius_check() {
    let contracts = parse_footprints(FOOTPRINT_TOML);
    for name in ["BoruvkaOp", "DelaunayOp"] {
        let fp = footprint_for(&contracts, name).expect("blessed");
        assert!(!fp.bounded, "{name} contract must be unbounded");
    }
    let strict = |space: &LockSpace| {
        space.audit().set_mode(CheckerMode::Collect);
        // radius 0 with an everything-is-far metric: any seeded trace
        // would be flagged instantly, so a clean run proves the
        // operators are exempt (no seed), not merely lucky.
        space.audit().set_radius_policy(Some(RadiusPolicy {
            radius: 0,
            dist: Box::new(|_, _| Some(u32::MAX)),
        }));
    };
    let mut rng = StdRng::seed_from_u64(9);

    // Boruvka on a small random graph.
    let g = gen::random_with_avg_degree(120, 4.0, &mut rng);
    let wg = WeightedGraph::random(g, &mut rng);
    let (space, op) = BoruvkaOp::new(&wg);
    strict(&space);
    let ex = Executor::new(&op, &space, ExecutorConfig::default());
    let mut ws = WorkSet::from_vec(op.initial_tasks());
    let mut rounds = 0;
    while !ws.is_empty() && rounds < 100_000 {
        ex.run_round(&mut ws, 8, &mut rng);
        rounds += 1;
    }
    assert!(ws.is_empty(), "boruvka did not drain");
    assert_eq!(space.audit().take_reports(), vec![]);

    // Delaunay refinement on a small point set.
    let mut pts = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(1.0, 1.0),
        Point::new(0.0, 1.0),
    ];
    pts.extend((0..30).map(|i| {
        let t = i as f64 / 30.0;
        Point::new(0.07 + 0.9 * t, 0.11 + 0.8 * (1.0 - t) * t * 3.7 % 0.89)
    }));
    let mesh = Mesh::delaunay(&pts);
    let (space, mut op) = DelaunayOp::with_auto_capacity(&mesh, RefineConfig::area_only(5e-3));
    strict(&space);
    let tasks = op.initial_tasks();
    let ex = Executor::new(&op, &space, ExecutorConfig::default());
    let mut ws = WorkSet::from_vec(tasks);
    let mut rounds = 0;
    while !ws.is_empty() && rounds < 100_000 {
        ex.run_round(&mut ws, 8, &mut rng);
        rounds += 1;
    }
    assert!(ws.is_empty(), "delaunay did not drain");
    assert_eq!(space.audit().take_reports(), vec![]);
}

/// The core-side line parser and the analyzer-blessed manifest agree:
/// the contracts the controller consumes are the contracts the
/// analyzer wrote.
#[test]
fn core_parser_reads_the_blessed_manifest() {
    let contracts = parse_footprints(FOOTPRINT_TOML);
    assert_eq!(contracts.len(), 10, "all ten app operators blessed");
    let sssp = footprint_for(&contracts, "SsspOp").expect("SsspOp");
    assert!(sssp.bounded);
    assert_eq!(sssp.radius, 1);
    let preflow = footprint_for(&contracts, "PreflowOp").expect("PreflowOp");
    assert!(preflow.bounded);
    assert_eq!(preflow.radius, 2);
    for unbounded in ["BoruvkaOp", "ClusteringOp", "DelaunayOp"] {
        assert!(
            !footprint_for(&contracts, unbounded)
                .expect(unbounded)
                .bounded,
            "{unbounded} must be unbounded"
        );
    }
}

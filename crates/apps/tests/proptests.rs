//! Property-based tests for the applications and their geometric
//! substrate.

use optpar_apps::boruvka::{BoruvkaOp, WeightedGraph};
use optpar_apps::coloring::{sequential_coloring, ColoringOp};
use optpar_apps::geometry::{self, Point};
use optpar_apps::matching::{sequential_matching, MatchingOp};
use optpar_apps::misapp::{sequential_mis, MisOp};
use optpar_apps::preflow::{FlowNetwork, PreflowOp};
use optpar_apps::sssp::{SsspInput, SsspOp};
use optpar_apps::triangulation::Mesh;
use optpar_graph::{CsrGraph, NodeId};
use optpar_runtime::{ConflictPolicy, Executor, ExecutorConfig, WorkSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..=max_edges)
}

/// Non-degenerate triangle corners in a bounded box.
fn triangle() -> impl Strategy<Value = (Point, Point, Point)> {
    let pt = (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y));
    (pt.clone(), pt.clone(), pt).prop_filter("non-degenerate", |(a, b, c)| {
        geometry::area(*a, *b, *c) > 1e-3
    })
}

proptest! {
    #[test]
    fn circumcenter_is_equidistant((a, b, c) in triangle()) {
        let cc = geometry::circumcenter(a, b, c).expect("non-degenerate");
        let (ra, rb, rc) = (cc.dist(a), cc.dist(b), cc.dist(c));
        let r = ra.max(rb).max(rc);
        prop_assert!((ra - rb).abs() < 1e-6 * r.max(1.0));
        prop_assert!((ra - rc).abs() < 1e-6 * r.max(1.0));
    }

    #[test]
    fn centroid_inside_and_incircle((a, b, c) in triangle()) {
        let g = geometry::centroid(a, b, c);
        // Orient CCW first.
        let (a, b, c) = if geometry::signed_area2(a, b, c) > 0.0 {
            (a, b, c)
        } else {
            (a, c, b)
        };
        prop_assert!(geometry::point_in_triangle(a, b, c, g));
        prop_assert!(geometry::in_circle(a, b, c, g), "centroid is inside the circumcircle");
    }

    #[test]
    fn min_angle_at_most_60_degrees((a, b, c) in triangle()) {
        let ang = geometry::min_angle(a, b, c);
        prop_assert!(ang > 0.0);
        prop_assert!(ang <= std::f64::consts::FRAC_PI_3 + 1e-9);
    }

    /// Delaunay triangulation of corner-pinned random points: valid,
    /// Delaunay, and exactly covering the unit square.
    #[test]
    fn delaunay_triangulation_properties(
        raw in prop::collection::vec((0.01f64..0.99, 0.01f64..0.99), 3..25)
    ) {
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        pts.extend(raw.iter().map(|&(x, y)| Point::new(x, y)));
        // Deduplicate near-coincident points (degenerate for BW).
        pts.dedup_by(|a, b| a.dist2(*b) < 1e-12);
        let m = Mesh::delaunay(&pts);
        prop_assert!(m.check_valid().is_ok(), "{:?}", m.check_valid());
        prop_assert!(m.check_delaunay().is_ok(), "{:?}", m.check_delaunay());
        prop_assert!((m.total_area() - 1.0).abs() < 1e-6, "area {}", m.total_area());
    }

    /// Sequential references on arbitrary graphs.
    #[test]
    fn sequential_apps_valid(el in edges(20, 60)) {
        let g = CsrGraph::from_edges(20, &el);
        let order: Vec<NodeId> = (0..20).collect();
        MisOp::validate(&g, &sequential_mis(&g, &order)).unwrap();
        ColoringOp::validate(&g, &sequential_coloring(&g, &order)).unwrap();
    }

    /// Speculative MIS and colouring remain valid for arbitrary graphs,
    /// worker counts, and allocations.
    #[test]
    fn speculative_apps_valid(
        el in edges(24, 70),
        workers in 1usize..4,
        m in 1usize..16,
        seed in any::<u64>(),
    ) {
        let g = CsrGraph::from_edges(24, &el);
        let mut rng = StdRng::seed_from_u64(seed);

        let (space, op) = MisOp::new(g.clone());
        let ex = Executor::new(&op, &space, ExecutorConfig { workers, policy: ConflictPolicy::FirstWins, ..ExecutorConfig::default() });
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut guard = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            guard += 1;
            prop_assert!(guard < 100_000);
        }
        let mut op = op;
        MisOp::validate(&g, &op.decisions()).unwrap();

        let (space, op) = ColoringOp::new(g.clone());
        let ex = Executor::new(&op, &space, ExecutorConfig { workers, policy: ConflictPolicy::FirstWins, ..ExecutorConfig::default() });
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
        }
        let mut op = op;
        ColoringOp::validate(&g, &op.colors()).unwrap();
    }

    /// Boruvka equals Kruskal for arbitrary graphs (distinct weights by
    /// construction).
    #[test]
    fn boruvka_equals_kruskal(el in edges(16, 40), seed in any::<u64>(), m in 1usize..10) {
        let g = CsrGraph::from_edges(16, &el);
        let mut rng = StdRng::seed_from_u64(seed);
        let wg = WeightedGraph::random(g, &mut rng);
        let reference = wg.kruskal();

        let (space, op) = BoruvkaOp::new(&wg);
        let ex = Executor::new(&op, &space, ExecutorConfig {
            workers: 2,
            policy: ConflictPolicy::FirstWins,
            ..ExecutorConfig::default()
        });
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut guard = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            guard += 1;
            prop_assert!(guard < 100_000);
        }
        let mut op = op;
        prop_assert_eq!(op.msf(), reference);
    }

    /// Speculative SSSP equals Dijkstra on arbitrary weighted graphs.
    #[test]
    fn sssp_equals_dijkstra(el in edges(20, 50), seed in any::<u64>(), m in 1usize..12) {
        let g = CsrGraph::from_edges(20, &el);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = SsspInput::random(g, (seed % 20) as u32, 30, &mut rng);
        let reference = input.dijkstra();

        let (space, op) = SsspOp::new(input);
        let ex = Executor::new(&op, &space, ExecutorConfig {
            workers: 2,
            policy: ConflictPolicy::FirstWins,
            ..ExecutorConfig::default()
        });
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut guard = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            guard += 1;
            prop_assert!(guard < 100_000);
        }
        let mut op = op;
        prop_assert_eq!(op.distances(), reference);
    }

    /// Speculative preflow-push equals Edmonds–Karp on arbitrary
    /// capacitated networks.
    #[test]
    fn preflow_equals_edmonds_karp(el in edges(12, 30), seed in any::<u64>(), m in 1usize..8) {
        let g = CsrGraph::from_edges(12, &el);
        let mut rng = StdRng::seed_from_u64(seed);
        let net = FlowNetwork::random(g, 0, 11, 9, &mut rng);
        let reference = net.edmonds_karp();

        let (space, op, active) = PreflowOp::new(net);
        let ex = Executor::new(&op, &space, ExecutorConfig {
            workers: 2,
            policy: ConflictPolicy::FirstWins,
            ..ExecutorConfig::default()
        });
        let mut ws = WorkSet::from_vec(active);
        let mut guard = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            guard += 1;
            prop_assert!(guard < 500_000);
        }
        let mut op = op;
        prop_assert!(op.validate().is_ok());
        prop_assert_eq!(op.flow_value(), reference);
    }

    /// Maximal matching stays maximal for arbitrary graphs, worker
    /// counts, and allocations; size is a 2-approximation of greedy.
    #[test]
    fn matching_is_maximal(el in edges(18, 45), workers in 1usize..4, m in 1usize..12, seed in any::<u64>()) {
        let g = CsrGraph::from_edges(18, &el);
        let mut rng = StdRng::seed_from_u64(seed);
        let (space, op) = MatchingOp::new(g.clone());
        let ex = Executor::new(&op, &space, ExecutorConfig {
            workers,
            policy: ConflictPolicy::FirstWins,
            ..ExecutorConfig::default()
        });
        let mut ws = WorkSet::from_vec(op.initial_tasks());
        let mut guard = 0;
        while !ws.is_empty() {
            ex.run_round(&mut ws, m, &mut rng);
            guard += 1;
            prop_assert!(guard < 100_000);
        }
        let mut op = op;
        let p = op.partners();
        prop_assert!(MatchingOp::validate(&g, &p).is_ok());
        let greedy = MatchingOp::matching_size(&sequential_matching(&g));
        prop_assert!(2 * MatchingOp::matching_size(&p) >= greedy);
    }
}
